package snn

import (
	"fmt"
	"math/rand"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

// State is the functional simulation state of a network: the membrane
// potential of every IF neuron plus scratch buffers. A State is reset
// between classifications.
//
// Neuron dynamics are the Integrate-and-Fire model of §2.1/§2.2: membrane
// potential accumulates the weighted sum of input spikes each timestep; when
// it crosses the layer threshold the neuron emits a spike and the potential
// is reduced by the threshold ("reset by subtraction", which preserves rate
// codes through deep stacks and is the standard choice for converted SNNs).
type State struct {
	Net  *Network
	Vmem []tensor.Vec // one per layer

	spikes []*bitvec.Bits // per layer output spikes of the last step
	input  *bitvec.Bits   // encoded input spikes of the last step

	// Run scratch, reused across classifications so steady-state runs are
	// allocation-free: the spike-index buffer of the integration kernels and
	// the output counters returned (aliased) in RunResult.
	idx    []int32
	counts []int
	first  []int

	// Blocked-runner scratch (see blocked.go), sized on first use.
	blockK     int
	blockIn    []*bitvec.Bits   // input raster of the current block
	blockOut   [][]*bitvec.Bits // per layer, output raster of the current block
	blockFlat  []int32          // concatenated per-step spike/tap index lists
	blockOffs  []int32          // per-step segment bounds into blockFlat (blockK+1)
	blockFires []uint8          // per-step fired-lane bytes of one panel group
	stepView   []*bitvec.Bits   // per-step layer view for observer replay
}

// NewState allocates simulation state for the network.
func NewState(net *Network) *State {
	s := &State{Net: net, Vmem: make([]tensor.Vec, len(net.Layers)), spikes: make([]*bitvec.Bits, len(net.Layers))}
	for i, l := range net.Layers {
		s.Vmem[i] = tensor.NewVec(l.OutSize())
		s.spikes[i] = bitvec.New(l.OutSize())
	}
	s.input = bitvec.New(net.Input.Size())
	s.counts = make([]int, net.OutSize())
	s.first = make([]int, net.OutSize())
	return s
}

// Reset zeroes all membrane potentials (between classifications).
func (s *State) Reset() {
	for _, v := range s.Vmem {
		v.Fill(0)
	}
}

// InputSpikes returns the input spike vector of the last Step (aliased, not
// a copy).
func (s *State) InputSpikes() *bitvec.Bits { return s.input }

// LayerSpikes returns the output spike vector of layer i from the last Step
// (aliased, not a copy).
func (s *State) LayerSpikes(i int) *bitvec.Bits { return s.spikes[i] }

// Step advances the network by one timestep given the input spike vector.
// It returns the spike vector of the final layer (aliased; valid until the
// next Step). Propagation is event-driven: only spiking presynaptic neurons
// contribute current.
func (s *State) Step(in *bitvec.Bits) *bitvec.Bits {
	if in.Len() != s.Net.Input.Size() {
		panic(fmt.Sprintf("snn: Step input %d bits, want %d", in.Len(), s.Net.Input.Size()))
	}
	if in != s.input {
		s.input.CopyFrom(in)
	}
	cur := s.input
	for li, l := range s.Net.Layers {
		v := s.Vmem[li]
		if l.Leak > 0 {
			v.Scale(1 - l.Leak)
		}
		s.idx = integrate(l, cur, v, s.idx[:0])
		out := s.spikes[li]
		out.Reset()
		fire(l, v, out)
		cur = out
	}
	return cur
}

// fire emits a spike for every neuron at or above the layer threshold and
// applies the reset (subtraction by default, to zero for hard-reset layers).
func fire(l *Layer, v tensor.Vec, out *bitvec.Bits) {
	th := l.Threshold
	hard := l.HardReset
	for i, p := range v {
		if p >= th {
			out.Set(i)
			if hard {
				v[i] = 0
			} else {
				v[i] = p - th
			}
		}
	}
}

// integrate adds the layer's weighted input-spike currents into v. The input
// spike indices are collected into buf (reused, typically s.idx[:0]) so the
// inner loops index a flat list instead of paying a closure call per spike;
// the extended buffer is returned for reuse.
func integrate(l *Layer, in *bitvec.Bits, v tensor.Vec, buf []int32) []int32 {
	buf = in.AppendSet(buf)
	switch l.Kind {
	case DenseLayer:
		// Row accumulation over the cached W^T: each input spike streams one
		// contiguous weight row into v instead of striding down a column of W.
		wt := l.transposedW()
		for _, i := range buf {
			wt.AddRow(int(i), v)
		}
	case ConvLayer, PoolLayer:
		// The adjacency caches resolved per-tap weights, so the inner loop is
		// a pure CSR accumulate with no index arithmetic per tap.
		adj := l.buildAdjacency()
		out, wval, start := adj.out, adj.wval, adj.start
		for _, i := range buf {
			for p := start[i]; p < start[i+1]; p++ {
				v[out[p]] += wval[p]
			}
		}
	default:
		panic("snn: unknown layer kind")
	}
	return buf
}

// Encoder converts an analog input vector into per-timestep spike vectors.
type Encoder interface {
	// Encode fills dst with the spike pattern for one timestep given pixel
	// intensities in [0, 1].
	Encode(intensity tensor.Vec, dst *bitvec.Bits)
}

// PoissonEncoder emits a spike at each timestep with probability
// intensity*MaxProb — the rate coding used for image inputs to SNNs.
type PoissonEncoder struct {
	MaxProb float64 // spike probability at intensity 1 (0 < MaxProb <= 1)
	Rng     *rand.Rand

	seed int64 // base seed, retained for ForkSeed
}

// NewPoissonEncoder returns a rate encoder with the given peak spike
// probability and deterministic seed.
func NewPoissonEncoder(maxProb float64, seed int64) *PoissonEncoder {
	if maxProb <= 0 || maxProb > 1 {
		panic(fmt.Sprintf("snn: PoissonEncoder maxProb %v out of (0,1]", maxProb))
	}
	return &PoissonEncoder{MaxProb: maxProb, Rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// ForkSeed returns a fresh encoder for sample i with an independent,
// reproducible spike stream.
//
// Determinism contract: the fork's stream depends only on the base
// encoder's (MaxProb, seed) and on i — never on how many spikes the parent
// or any other fork has drawn, nor on which goroutine runs it. Fork 0's
// stream equals the base encoder's own stream from a fresh state. Batch
// evaluations key forks by image index, which makes per-image spike trains
// identical between serial and parallel evaluation regardless of worker
// count or scheduling.
func (e *PoissonEncoder) ForkSeed(i int) *PoissonEncoder {
	return NewPoissonEncoder(e.MaxProb, e.seed+int64(i))
}

// Encode implements Encoder.
func (e *PoissonEncoder) Encode(intensity tensor.Vec, dst *bitvec.Bits) {
	if len(intensity) != dst.Len() {
		panic(fmt.Sprintf("snn: Encode %d intensities into %d bits", len(intensity), dst.Len()))
	}
	dst.Reset()
	for i, x := range intensity {
		if x <= 0 {
			continue
		}
		if e.Rng.Float64() < x*e.MaxProb {
			dst.Set(i)
		}
	}
}

// RegularEncoder is a deterministic rate encoder: each input accumulates
// its scaled intensity every timestep and spikes when the accumulator
// crosses one (subtracting one), producing evenly spaced spikes whose count
// over T steps is within one of T*intensity*MaxProb. Deterministic encoding
// removes Poisson sampling noise from accuracy measurements.
type RegularEncoder struct {
	MaxProb float64
	acc     tensor.Vec
}

// NewRegularEncoder returns a deterministic rate encoder with the given
// peak spike probability.
func NewRegularEncoder(maxProb float64) *RegularEncoder {
	if maxProb <= 0 || maxProb > 1 {
		panic(fmt.Sprintf("snn: RegularEncoder maxProb %v out of (0,1]", maxProb))
	}
	return &RegularEncoder{MaxProb: maxProb}
}

// Reset clears the accumulators (between inputs, for exact reproducibility).
func (e *RegularEncoder) Reset() {
	for i := range e.acc {
		e.acc[i] = 0
	}
}

// Encode implements Encoder.
func (e *RegularEncoder) Encode(intensity tensor.Vec, dst *bitvec.Bits) {
	if len(intensity) != dst.Len() {
		panic(fmt.Sprintf("snn: Encode %d intensities into %d bits", len(intensity), dst.Len()))
	}
	if e.acc == nil {
		e.acc = tensor.NewVec(len(intensity))
	}
	if len(e.acc) != len(intensity) {
		panic(fmt.Sprintf("snn: RegularEncoder reused across input sizes %d and %d", len(e.acc), len(intensity)))
	}
	dst.Reset()
	for i, x := range intensity {
		if x <= 0 {
			continue
		}
		e.acc[i] += x * e.MaxProb
		if e.acc[i] >= 1 {
			e.acc[i] -= 1
			dst.Set(i)
		}
	}
}

// RunResult summarizes one classification run.
//
// OutCounts and FirstSpike alias scratch owned by the State that produced
// the result, so steady-state classification allocates nothing; they are
// valid until the next run on that State. Callers that retain results
// across runs (or hand them to another goroutine) must Clone first.
type RunResult struct {
	Steps       int
	OutCounts   []int // output spike counts per class
	Prediction  int
	InputSpikes int // total encoded input spikes over the run
	// FirstSpike records the timestep of each output neuron's first spike
	// (-1 if it never fired) — the basis of time-to-first-spike decoding.
	FirstSpike []int
}

// Clone returns a copy of r whose OutCounts and FirstSpike no longer alias
// the producing State's scratch, safe to retain across subsequent runs.
func (r RunResult) Clone() RunResult {
	r.OutCounts = append([]int(nil), r.OutCounts...)
	r.FirstSpike = append([]int(nil), r.FirstSpike...)
	return r
}

// TTFSPrediction decodes by latency instead of rate: the class whose neuron
// fired first wins (ties broken by spike count, then index). Returns -1 if
// no output neuron fired. Latency decoding lets a classification terminate
// at the first output spike — a common early-exit optimization for
// event-driven hardware.
func (r RunResult) TTFSPrediction() int {
	best := -1
	for i, fs := range r.FirstSpike {
		if fs < 0 {
			continue
		}
		if best < 0 || fs < r.FirstSpike[best] ||
			(fs == r.FirstSpike[best] && r.OutCounts[i] > r.OutCounts[best]) {
			best = i
		}
	}
	return best
}

// Run classifies one input by simulating T timesteps and counting output
// spikes; the class with the most spikes wins. The state is reset first.
func (s *State) Run(intensity tensor.Vec, enc Encoder, steps int) RunResult {
	return s.RunObserved(intensity, enc, steps, nil)
}

// Observer receives the spike vectors of every timestep of a run; the
// architecture simulators implement it to count events.
type Observer interface {
	// ObserveStep is called once per timestep with the input spikes and the
	// per-layer output spike vectors (aliased; copy to retain).
	ObserveStep(t int, input *bitvec.Bits, layers []*bitvec.Bits)
}

// RunObserved is Run with a per-timestep observer hook. It encodes directly
// into the State's input vector and counts output spikes into the State's
// result scratch, so a warm State classifies without allocating.
func (s *State) RunObserved(intensity tensor.Vec, enc Encoder, steps int, obs Observer) RunResult {
	s.Reset()
	counts, first := s.resetResult()
	inputSpikes := 0
	for t := 0; t < steps; t++ {
		enc.Encode(intensity, s.input)
		inputSpikes += s.input.Count()
		out := s.Step(s.input)
		if obs != nil {
			obs.ObserveStep(t, s.input, s.spikes)
		}
		s.idx = out.AppendSet(s.idx[:0])
		for _, i := range s.idx {
			counts[i]++
			if first[i] < 0 {
				first[i] = t
			}
		}
	}
	return s.finishResult(steps, inputSpikes)
}

// resetResult clears the per-run output counters and returns them.
func (s *State) resetResult() (counts, first []int) {
	for i := range s.counts {
		s.counts[i] = 0
		s.first[i] = -1
	}
	return s.counts, s.first
}

// finishResult decodes the rate prediction from the accumulated counters.
// The returned slices alias the State scratch (see RunResult).
func (s *State) finishResult(steps, inputSpikes int) RunResult {
	best, bestN := 0, -1
	for i, c := range s.counts {
		if c > bestN {
			best, bestN = i, c
		}
	}
	return RunResult{
		Steps: steps, OutCounts: s.counts, Prediction: best,
		InputSpikes: inputSpikes, FirstSpike: s.first,
	}
}
