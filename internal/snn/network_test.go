package snn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"resparc/internal/tensor"
)

func mustDense(t *testing.T, in, out int, fill float64, th float64) *Layer {
	t.Helper()
	w := tensor.NewMat(out, in)
	w.Data.Fill(fill)
	l, err := NewDense("d", in, out, w, th)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayerKindString(t *testing.T) {
	if DenseLayer.String() != "dense" || ConvLayer.String() != "conv" || PoolLayer.String() != "pool" {
		t.Fatal("LayerKind.String wrong")
	}
	if LayerKind(9).String() != "LayerKind(9)" {
		t.Fatal("unknown kind")
	}
}

func TestNewDenseValidation(t *testing.T) {
	w := tensor.NewMat(3, 4)
	if _, err := NewDense("x", 4, 3, w, 1); err != nil {
		t.Fatalf("valid dense rejected: %v", err)
	}
	if _, err := NewDense("x", 5, 3, w, 1); err == nil {
		t.Fatal("wrong cols accepted")
	}
	if _, err := NewDense("x", 4, 3, nil, 1); err == nil {
		t.Fatal("nil weights accepted")
	}
	if _, err := NewDense("x", 4, 3, w, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestNewConvValidation(t *testing.T) {
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 8, W: 8, C: 2}, K: 3, Stride: 1, Pad: 0, OutC: 4}
	w := tensor.NewMat(4, 18)
	if _, err := NewConv("c", geom, w, 1); err != nil {
		t.Fatalf("valid conv rejected: %v", err)
	}
	if _, err := NewConv("c", geom, tensor.NewMat(4, 9), 1); err == nil {
		t.Fatal("wrong kernel size accepted")
	}
	bad := geom
	bad.K = 0
	if _, err := NewConv("c", bad, w, 1); err == nil {
		t.Fatal("bad geometry accepted")
	}
	if _, err := NewConv("c", geom, w, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool("p", tensor.Shape3{H: 8, W: 8, C: 3}, 2, 0.499); err != nil {
		t.Fatalf("valid pool rejected: %v", err)
	}
	if _, err := NewPool("p", tensor.Shape3{H: 8, W: 8, C: 3}, 0, 0.499); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewPool("p", tensor.Shape3{H: 8, W: 8, C: 3}, 2, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestFanInAndSynapses(t *testing.T) {
	d := mustDense(t, 100, 50, 0.1, 1)
	if d.FanIn() != 100 || d.Synapses() != 5000 {
		t.Fatalf("dense FanIn=%d Synapses=%d", d.FanIn(), d.Synapses())
	}

	geom := tensor.ConvGeom{In: tensor.Shape3{H: 10, W: 10, C: 3}, K: 3, Stride: 1, Pad: 0, OutC: 8}
	w := tensor.NewMat(8, 27)
	c, err := NewConv("c", geom, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.FanIn() != 27 {
		t.Fatalf("conv FanIn=%d", c.FanIn())
	}
	wantConns, _ := geom.Connections()
	if c.Synapses() != wantConns {
		t.Fatalf("conv Synapses=%d want %d", c.Synapses(), wantConns)
	}

	p, err := NewPool("p", tensor.Shape3{H: 8, W: 8, C: 2}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	if p.FanIn() != 4 || p.Synapses() != 4*4*2*4 {
		t.Fatalf("pool FanIn=%d Synapses=%d", p.FanIn(), p.Synapses())
	}
	if p.PoolWeight() != 0.25 {
		t.Fatalf("PoolWeight=%v", p.PoolWeight())
	}
}

func TestNewNetworkValidation(t *testing.T) {
	l1 := mustDense(t, 4, 8, 0.1, 1)
	l2 := mustDense(t, 8, 2, 0.1, 1)
	if _, err := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 4}, l1, l2); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	if _, err := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 5}, l1, l2); err == nil {
		t.Fatal("input mismatch accepted")
	}
	if _, err := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 4}, l2, l1); err == nil {
		t.Fatal("inter-layer mismatch accepted")
	}
}

func TestNetworkCounts(t *testing.T) {
	l1 := mustDense(t, 4, 8, 0.1, 1)
	l2 := mustDense(t, 8, 2, 0.1, 1)
	n, err := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 4}, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Neurons() != 14 {
		t.Fatalf("Neurons=%d", n.Neurons())
	}
	if n.HiddenNeurons() != 10 {
		t.Fatalf("HiddenNeurons=%d", n.HiddenNeurons())
	}
	if n.Synapses() != 4*8+8*2 {
		t.Fatalf("Synapses=%d", n.Synapses())
	}
	if n.OutSize() != 2 {
		t.Fatalf("OutSize=%d", n.OutSize())
	}
	empty, _ := NewNetwork("e", tensor.Shape3{H: 1, W: 1, C: 4})
	if empty.OutSize() != 4 {
		t.Fatalf("empty OutSize=%d", empty.OutSize())
	}
}

// The adjacency built for event-driven conv propagation must contain
// exactly the in-bounds taps of ConvGeom.
func TestBuildAdjacencyMatchesGeometry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		geom := tensor.ConvGeom{
			In:     tensor.Shape3{H: 4 + rng.Intn(4), W: 4 + rng.Intn(4), C: 1 + rng.Intn(2)},
			K:      1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2),
			Pad:    rng.Intn(2),
			OutC:   1 + rng.Intn(3),
		}
		if _, err := geom.OutShape(); err != nil {
			return true
		}
		w := tensor.NewMat(geom.OutC, geom.FanIn())
		l, err := NewConv("c", geom, w, 1)
		if err != nil {
			return false
		}
		adj := l.buildAdjacency()
		// Reference: count in-bounds taps per input.
		type tap struct{ out, k int }
		ref := make(map[int][]tap)
		total := 0
		_ = geom.ForEachTap(func(outIdx, inIdx, kIdx int) {
			if inIdx < 0 {
				return
			}
			ref[inIdx] = append(ref[inIdx], tap{outIdx, kIdx})
			total++
		})
		if len(adj.out) != total {
			return false
		}
		for in := 0; in < l.InSize(); in++ {
			taps := ref[in]
			if int(adj.start[in+1]-adj.start[in]) != len(taps) {
				return false
			}
			seen := make(map[tap]bool)
			for p := adj.start[in]; p < adj.start[in+1]; p++ {
				seen[tap{int(adj.out[p]), int(adj.kidx[p])}] = true
			}
			for _, tp := range taps {
				if !seen[tp] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkSummary(t *testing.T) {
	l1 := mustDense(t, 4, 8, 0.1, 1)
	l1.Leak = 0.2
	l2 := mustDense(t, 8, 2, 0.1, 0.5)
	l2.HardReset = true
	n, err := NewNetwork("demo", tensor.Shape3{H: 2, W: 2, C: 1}, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Summary()
	for _, want := range []string{"demo", "10 neurons", "48 synapses", "dense", "leak=0.2", "hard-reset", "th=0.5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
