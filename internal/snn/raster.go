package snn

import (
	"fmt"
	"io"
	"strings"

	"resparc/internal/bitvec"
)

// Raster records the spike train of one layer over a run — (timestep,
// neuron) pairs — for debugging converted networks and visualizing
// event-driven sparsity. It implements Observer.
type Raster struct {
	// Layer selects which layer to record (-1 records the network input).
	Layer int

	steps  int
	spikes [][]int32 // per step, spiking neuron indices
	size   int
}

// NewRaster records layer (0-based; -1 for the input spikes).
func NewRaster(layer int) *Raster {
	if layer < -1 {
		panic(fmt.Sprintf("snn: raster layer %d", layer))
	}
	return &Raster{Layer: layer}
}

// ObserveStep implements Observer.
func (r *Raster) ObserveStep(_ int, input *bitvec.Bits, layers []*bitvec.Bits) {
	src := input
	if r.Layer >= 0 {
		if r.Layer >= len(layers) {
			panic(fmt.Sprintf("snn: raster layer %d of %d", r.Layer, len(layers)))
		}
		src = layers[r.Layer]
	}
	r.size = src.Len()
	var row []int32
	src.ForEachSet(func(i int) { row = append(row, int32(i)) })
	r.spikes = append(r.spikes, row)
	r.steps++
}

// Steps returns the number of recorded timesteps.
func (r *Raster) Steps() int { return r.steps }

// Spikes returns the spiking neuron indices at one recorded step.
func (r *Raster) Spikes(step int) []int32 { return r.spikes[step] }

// TotalSpikes returns the spike count over the whole recording.
func (r *Raster) TotalSpikes() int {
	n := 0
	for _, row := range r.spikes {
		n += len(row)
	}
	return n
}

// MeanRate returns spikes per neuron per timestep.
func (r *Raster) MeanRate() float64 {
	if r.steps == 0 || r.size == 0 {
		return 0
	}
	return float64(r.TotalSpikes()) / float64(r.steps*r.size)
}

// Render draws an ASCII raster plot (time left to right, neurons top to
// bottom), capping at maxNeurons rows and maxSteps columns (0 = all, bounded
// by the recording).
func (r *Raster) Render(w io.Writer, maxNeurons, maxSteps int) error {
	rows := r.size
	if maxNeurons > 0 && rows > maxNeurons {
		rows = maxNeurons
	}
	cols := r.steps
	if maxSteps > 0 && cols > maxSteps {
		cols = maxSteps
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	for t := 0; t < cols; t++ {
		for _, n := range r.spikes[t] {
			if int(n) < rows {
				grid[n][t] = '|'
			}
		}
	}
	if _, err := fmt.Fprintf(w, "raster: %d neurons x %d steps, mean rate %.3f\n", r.size, r.steps, r.MeanRate()); err != nil {
		return err
	}
	for i := range grid {
		if _, err := fmt.Fprintf(w, "%4d %s\n", i, grid[i]); err != nil {
			return err
		}
	}
	if rows < r.size {
		if _, err := fmt.Fprintf(w, "... (%d more neurons)\n", r.size-rows); err != nil {
			return err
		}
	}
	return nil
}
