package snn

import (
	"math"
	"math/rand"
	"testing"
)

// refBlockPanel is an independent scalar reference for blockPanel: per lane,
// replay the adds of every step's list in order, then threshold and reset —
// the exact operation sequence of the step-major runner with no leak.
func refBlockPanel(panel []float64, flat []int32, offs []int32, fires []uint8, acc *[panelLanes]float64, th float64, hard bool) uint64 {
	var fireSteps uint64
	for k := range fires {
		for _, idx := range flat[offs[k]:offs[k+1]] {
			for i := 0; i < panelLanes; i++ {
				acc[i] += panel[int(idx)*panelLanes+i]
			}
		}
		var mask uint8
		for i := 0; i < panelLanes; i++ {
			if acc[i] >= th {
				mask |= 1 << uint(i)
				if hard {
					acc[i] = 0
				} else {
					acc[i] -= th
				}
			}
		}
		fires[k] = mask
		if mask != 0 {
			fireSteps |= 1 << uint(k)
		}
	}
	return fireSteps
}

// blockPanel (SSE2 on amd64, pure Go elsewhere) must be bit-identical to the
// scalar reference for randomized panels, spike lists, thresholds, and both
// reset modes — including steps with empty lists and runs where lanes hover
// exactly at threshold.
func TestBlockPanelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		lines := 1 + rng.Intn(40)
		kn := 1 + rng.Intn(64)
		panel := make([]float64, lines*panelLanes)
		for i := range panel {
			panel[i] = rng.NormFloat64() * 0.5
		}
		var flat []int32
		offs := make([]int32, kn+1)
		for k := 0; k < kn; k++ {
			n := rng.Intn(4)
			if rng.Intn(5) == 0 {
				n = 0 // force silent steps
			}
			prev := -1
			for s := 0; s < n && prev+1 < lines; s++ {
				idx := prev + 1 + rng.Intn(lines-prev-1)
				flat = append(flat, int32(idx))
				prev = idx
			}
			offs[k+1] = int32(len(flat))
		}
		th := rng.Float64()*2 - 0.2
		hard := rng.Intn(2) == 0
		var accA, accR [panelLanes]float64
		for i := range accA {
			accA[i] = rng.NormFloat64()
			accR[i] = accA[i]
		}
		firesA := make([]uint8, kn)
		firesR := make([]uint8, kn)
		gotFS := blockPanel(panel, flat, offs, firesA, &accA, th, hard)
		wantFS := refBlockPanel(panel, flat, offs, firesR, &accR, th, hard)
		if gotFS != wantFS {
			t.Fatalf("trial %d: fired-steps mask %064b, want %064b", trial, gotFS, wantFS)
		}
		for k := range firesR {
			if firesA[k] != firesR[k] {
				t.Fatalf("trial %d step %d: fires %08b, want %08b", trial, k, firesA[k], firesR[k])
			}
		}
		for i := range accR {
			if math.Float64bits(accA[i]) != math.Float64bits(accR[i]) {
				t.Fatalf("trial %d lane %d: acc %x (%v), want %x (%v)",
					trial, i, math.Float64bits(accA[i]), accA[i], math.Float64bits(accR[i]), accR[i])
			}
		}
	}
}

// A non-zero offs[0] (the batch-major layout hands blockPanel a window of a
// larger offsets table) must behave exactly like a rebased table.
func TestBlockPanelOffsetWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	panel := make([]float64, 16*panelLanes)
	for i := range panel {
		panel[i] = rng.NormFloat64()
	}
	// flat = [prefix | window]: the window's offsets start at 3.
	flat := []int32{1, 5, 9, 0, 4, 7, 11, 2}
	offs := []int32{3, 5, 5, 8}
	fires := make([]uint8, 3)
	var acc [panelLanes]float64
	got := blockPanel(panel, flat, offs, fires, &acc, 0.9, false)
	rebFlat := flat[3:]
	rebOffs := []int32{0, 2, 2, 5}
	rebFires := make([]uint8, 3)
	var rebAcc [panelLanes]float64
	want := refBlockPanel(panel, rebFlat, rebOffs, rebFires, &rebAcc, 0.9, false)
	if got != want {
		t.Fatalf("fired-steps %b, want %b", got, want)
	}
	for k := range fires {
		if fires[k] != rebFires[k] {
			t.Fatalf("step %d: fires %08b, want %08b", k, fires[k], rebFires[k])
		}
	}
	for i := range acc {
		if math.Float64bits(acc[i]) != math.Float64bits(rebAcc[i]) {
			t.Fatalf("lane %d: %v != %v", i, acc[i], rebAcc[i])
		}
	}
}

// NaN potentials must never fire (p >= th is false for NaN) and must survive
// the branchless reset unchanged in fired groups.
func TestBlockPanelNaN(t *testing.T) {
	panel := make([]float64, 4*panelLanes)
	for i := range panel {
		panel[i] = 10 // every lane fires after one add, except the NaN lane
	}
	flat := []int32{0}
	offs := []int32{0, 1}
	fires := make([]uint8, 1)
	var acc [panelLanes]float64
	acc[3] = math.NaN()
	fs := blockPanel(panel, flat, offs, fires, &acc, 1.0, false)
	if fs != 1 {
		t.Fatalf("fired-steps %b, want 1", fs)
	}
	if fires[0] != 0xF7 {
		t.Fatalf("fires %08b, want 11110111 (NaN lane silent)", fires[0])
	}
	if !math.IsNaN(acc[3]) {
		t.Fatalf("NaN lane overwritten: %v", acc[3])
	}
	for i, p := range acc {
		if i != 3 && p != 9 {
			t.Fatalf("lane %d: %v, want 9 (10 added, threshold 1 subtracted)", i, p)
		}
	}
}

// accumPanel must be bit-identical to per-lane scalar accumulation.
func TestAccumPanelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 100; trial++ {
		lines := 1 + rng.Intn(30)
		panel := make([]float64, lines*panelLanes)
		for i := range panel {
			panel[i] = rng.NormFloat64()
		}
		n := rng.Intn(2 * lines)
		list := make([]int32, n)
		for i := range list {
			list[i] = int32(rng.Intn(lines))
		}
		var acc, ref [panelLanes]float64
		for i := range acc {
			acc[i] = rng.NormFloat64()
			ref[i] = acc[i]
		}
		accumPanel(panel, list, &acc)
		for _, idx := range list {
			for i := 0; i < panelLanes; i++ {
				ref[i] += panel[int(idx)*panelLanes+i]
			}
		}
		for i := range ref {
			if math.Float64bits(acc[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("trial %d lane %d: %v != %v", trial, i, acc[i], ref[i])
			}
		}
	}
}

// BenchmarkBlockPanel measures the block-integration kernel on a
// representative shape: a 66-line panel across a 48-step block at ~3
// spikes/step (the conv layers' typical per-location load).
func BenchmarkBlockPanel(b *testing.B) {
	rng := rand.New(rand.NewSource(80))
	const lines, kn = 66, 48
	panel := make([]float64, lines*panelLanes)
	for i := range panel {
		panel[i] = rng.NormFloat64() * 0.1
	}
	var flat []int32
	offs := make([]int32, kn+1)
	for k := 0; k < kn; k++ {
		for s := 0; s < 3; s++ {
			flat = append(flat, int32(rng.Intn(lines)))
		}
		offs[k+1] = int32(len(flat))
	}
	fires := make([]uint8, kn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc [panelLanes]float64
		blockPanel(panel, flat, offs, fires, &acc, 0.8, false)
	}
}
