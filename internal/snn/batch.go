package snn

import (
	"fmt"

	"resparc/internal/parallel"
	"resparc/internal/tensor"
)

// EncoderFactory builds a deterministic per-sample encoder — typically
// baseEncoder.ForkSeed(i) — so every image's spike stream depends only on
// its index, never on worker scheduling.
type EncoderFactory func(sample int) Encoder

// RunBatch classifies every input across a worker pool and returns the
// per-image RunResults in input order. Each worker owns one State (reused
// across its images; Run resets it) and each image gets its own encoder
// from enc, so the results are bit-identical for any worker count:
// RunBatch(..., 1) is the serial reference and RunBatch(..., N) must match
// it exactly. workers <= 0 selects one worker per CPU.
func RunBatch(net *Network, inputs []tensor.Vec, enc EncoderFactory, steps, workers int) ([]RunResult, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("snn: empty batch")
	}
	if steps < 1 {
		return nil, fmt.Errorf("snn: steps %d", steps)
	}
	workers = parallel.Clamp(workers, len(inputs))
	states := make([]*State, workers)
	for w := range states {
		states[w] = NewState(net)
	}
	results := make([]RunResult, len(inputs))
	parallel.ForEach(len(inputs), workers, func(worker, i int) {
		results[i] = states[worker].Run(inputs[i], enc(i), steps)
	})
	return results, nil
}

// EvaluateBatch classifies the inputs in parallel and returns accuracy
// against the labels. It is the worker-pool counterpart of Evaluate and is
// bit-identical to it when enc forks the same per-sample streams.
func EvaluateBatch(net *Network, inputs []tensor.Vec, labels []int, enc EncoderFactory, steps, workers int) (float64, error) {
	if len(inputs) != len(labels) {
		return 0, fmt.Errorf("snn: %d inputs vs %d labels", len(inputs), len(labels))
	}
	results, err := RunBatch(net, inputs, enc, steps, workers)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, r := range results {
		if r.Prediction == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(results)), nil
}
