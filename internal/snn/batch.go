package snn

import (
	"fmt"

	"resparc/internal/parallel"
	"resparc/internal/tensor"
)

// EncoderFactory builds a deterministic per-sample encoder — typically
// baseEncoder.ForkSeed(i) — so every image's spike stream depends only on
// its index, never on worker scheduling.
type EncoderFactory func(sample int) Encoder

// Options select how a batch run executes. The zero value is the default:
// the blocked layer-major runner (bit-identical to the step-major reference,
// measurably faster — see blocked.go) with DefaultBlockSize, one worker per
// CPU.
type Options struct {
	// Workers is the worker-pool size (<= 0 selects one per CPU). Results
	// are bit-identical for any value; Workers: 1 is the serial reference.
	Workers int
	// Stepped forces the step-major reference runner (RunObserved's loop
	// nest) instead of the blocked layer-major one.
	Stepped bool
	// BlockSize overrides the temporal block length of the blocked runner
	// (<= 0 selects DefaultBlockSize). Ignored when Stepped is set.
	BlockSize int
	// Batch, when > 1, evaluates contiguous groups of up to Batch images
	// batch-major: one BatchState integrates the whole group per layer
	// visit, streaming each layer's weights once per group instead of once
	// per image. Per-image results are bit-identical to Batch <= 1 for any
	// group size (see BatchState). Ignored when Stepped is set.
	Batch int
}

// BatchOptions is the legacy runner selection of RunBatchOpt.
//
// Deprecated: use Options, which folds the worker count in.
type BatchOptions struct {
	Stepped   bool
	BlockSize int
}

// RunBatch classifies every input across a worker pool and returns the
// per-image RunResults in input order. Each worker owns one State (reused
// across its images; each run resets it) and each image gets its own
// encoder from enc, so the results are bit-identical for any worker count:
// Options{Workers: 1} is the serial reference and any other pool size must
// match it exactly.
func RunBatch(net *Network, inputs []tensor.Vec, enc EncoderFactory, steps int, opt Options) ([]RunResult, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("snn: empty batch")
	}
	if steps < 1 {
		return nil, fmt.Errorf("snn: steps %d", steps)
	}
	if opt.Batch > 1 && !opt.Stepped {
		return runBatchMajor(net, inputs, enc, steps, opt)
	}
	workers := parallel.Clamp(opt.Workers, len(inputs))
	runOne := func(st *State, i int) RunResult {
		if opt.Stepped {
			return st.Run(inputs[i], enc(i), steps)
		}
		return st.RunBlockedK(inputs[i], enc(i), steps, opt.BlockSize, nil)
	}
	results := make([]RunResult, len(inputs))
	if workers == 1 {
		// Serial fast path: one State on the calling goroutine, no worker
		// pool or per-worker state fan-out.
		st := NewState(net)
		for i := range inputs {
			results[i] = runOne(st, i).Clone()
		}
		return results, nil
	}
	states := make([]*State, workers)
	for w := range states {
		states[w] = NewState(net)
	}
	parallel.ForEach(len(inputs), workers, func(worker, i int) {
		// States are reused across a worker's share, so detach the result
		// from the State scratch before the next image overwrites it.
		results[i] = runOne(states[worker], i).Clone()
	})
	return results, nil
}

// runBatchMajor is the Options.Batch > 1 path of RunBatch: inputs are cut
// into contiguous groups of up to opt.Batch images and each group runs
// batch-major on one BatchState. Grouping never changes per-image results —
// image i's outcome depends only on (inputs[i], enc(i)) — so any
// (Batch, Workers) combination is bit-identical to the per-image path.
func runBatchMajor(net *Network, inputs []tensor.Vec, enc EncoderFactory, steps int, opt Options) ([]RunResult, error) {
	b := opt.Batch
	if b > len(inputs) {
		// Never size state for images that don't exist: the group rasters and
		// potential matrices scale with the state's B, and an oversized state
		// costs cache footprint for no extra parallelism.
		b = len(inputs)
	}
	groups := (len(inputs) + b - 1) / b
	workers := parallel.Clamp(opt.Workers, groups)
	results := make([]RunResult, len(inputs))
	run := func(bst *BatchState, encs []Encoder, g int) {
		lo := g * b
		hi := lo + b
		if hi > len(inputs) {
			hi = len(inputs)
		}
		encs = encs[:0]
		for i := lo; i < hi; i++ {
			encs = append(encs, enc(i))
		}
		rs := bst.RunBlocked(inputs[lo:hi], encs, steps, opt.BlockSize, nil)
		for i, r := range rs {
			results[lo+i] = r.Clone()
		}
	}
	if workers == 1 {
		bst := NewBatchState(net, b)
		encs := make([]Encoder, 0, b)
		for g := 0; g < groups; g++ {
			run(bst, encs, g)
		}
		return results, nil
	}
	states := make([]*BatchState, workers)
	encbufs := make([][]Encoder, workers)
	for w := range states {
		states[w] = NewBatchState(net, b)
		encbufs[w] = make([]Encoder, 0, b)
	}
	parallel.ForEach(groups, workers, func(worker, g int) {
		run(states[worker], encbufs[worker], g)
	})
	return results, nil
}

// RunBatchOpt is the legacy spelling of RunBatch with the worker count as a
// positional argument.
//
// Deprecated: call RunBatch with Options directly.
func RunBatchOpt(net *Network, inputs []tensor.Vec, enc EncoderFactory, steps, workers int, opt BatchOptions) ([]RunResult, error) {
	return RunBatch(net, inputs, enc, steps, Options{
		Workers: workers, Stepped: opt.Stepped, BlockSize: opt.BlockSize,
	})
}

// EvaluateBatch classifies the inputs in parallel and returns accuracy
// against the labels. It is the worker-pool counterpart of Evaluate and is
// bit-identical to it when enc forks the same per-sample streams.
func EvaluateBatch(net *Network, inputs []tensor.Vec, labels []int, enc EncoderFactory, steps, workers int) (float64, error) {
	if len(inputs) != len(labels) {
		return 0, fmt.Errorf("snn: %d inputs vs %d labels", len(inputs), len(labels))
	}
	results, err := RunBatch(net, inputs, enc, steps, Options{Workers: workers})
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, r := range results {
		if r.Prediction == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(results)), nil
}
