package snn

import (
	"fmt"

	"resparc/internal/parallel"
	"resparc/internal/tensor"
)

// EncoderFactory builds a deterministic per-sample encoder — typically
// baseEncoder.ForkSeed(i) — so every image's spike stream depends only on
// its index, never on worker scheduling.
type EncoderFactory func(sample int) Encoder

// Options select how a batch run executes. The zero value is the default:
// the blocked layer-major runner (bit-identical to the step-major reference,
// measurably faster — see blocked.go) with DefaultBlockSize, one worker per
// CPU.
type Options struct {
	// Workers is the worker-pool size (<= 0 selects one per CPU). Results
	// are bit-identical for any value; Workers: 1 is the serial reference.
	Workers int
	// Stepped forces the step-major reference runner (RunObserved's loop
	// nest) instead of the blocked layer-major one.
	Stepped bool
	// BlockSize overrides the temporal block length of the blocked runner
	// (<= 0 selects DefaultBlockSize). Ignored when Stepped is set.
	BlockSize int
}

// BatchOptions is the legacy runner selection of RunBatchOpt.
//
// Deprecated: use Options, which folds the worker count in.
type BatchOptions struct {
	Stepped   bool
	BlockSize int
}

// RunBatch classifies every input across a worker pool and returns the
// per-image RunResults in input order. Each worker owns one State (reused
// across its images; each run resets it) and each image gets its own
// encoder from enc, so the results are bit-identical for any worker count:
// Options{Workers: 1} is the serial reference and any other pool size must
// match it exactly.
func RunBatch(net *Network, inputs []tensor.Vec, enc EncoderFactory, steps int, opt Options) ([]RunResult, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("snn: empty batch")
	}
	if steps < 1 {
		return nil, fmt.Errorf("snn: steps %d", steps)
	}
	workers := parallel.Clamp(opt.Workers, len(inputs))
	states := make([]*State, workers)
	for w := range states {
		states[w] = NewState(net)
	}
	results := make([]RunResult, len(inputs))
	parallel.ForEach(len(inputs), workers, func(worker, i int) {
		st := states[worker]
		var r RunResult
		if opt.Stepped {
			r = st.Run(inputs[i], enc(i), steps)
		} else {
			r = st.RunBlockedK(inputs[i], enc(i), steps, opt.BlockSize, nil)
		}
		// States are reused across a worker's share, so detach the result
		// from the State scratch before the next image overwrites it.
		results[i] = r.Clone()
	})
	return results, nil
}

// RunBatchOpt is the legacy spelling of RunBatch with the worker count as a
// positional argument.
//
// Deprecated: call RunBatch with Options directly.
func RunBatchOpt(net *Network, inputs []tensor.Vec, enc EncoderFactory, steps, workers int, opt BatchOptions) ([]RunResult, error) {
	return RunBatch(net, inputs, enc, steps, Options{
		Workers: workers, Stepped: opt.Stepped, BlockSize: opt.BlockSize,
	})
}

// EvaluateBatch classifies the inputs in parallel and returns accuracy
// against the labels. It is the worker-pool counterpart of Evaluate and is
// bit-identical to it when enc forks the same per-sample streams.
func EvaluateBatch(net *Network, inputs []tensor.Vec, labels []int, enc EncoderFactory, steps, workers int) (float64, error) {
	if len(inputs) != len(labels) {
		return 0, fmt.Errorf("snn: %d inputs vs %d labels", len(inputs), len(labels))
	}
	results, err := RunBatch(net, inputs, enc, steps, Options{Workers: workers})
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, r := range results {
		if r.Prediction == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(results)), nil
}
