package snn

import (
	"fmt"

	"resparc/internal/parallel"
	"resparc/internal/tensor"
)

// EncoderFactory builds a deterministic per-sample encoder — typically
// baseEncoder.ForkSeed(i) — so every image's spike stream depends only on
// its index, never on worker scheduling.
type EncoderFactory func(sample int) Encoder

// BatchOptions select the functional runner used by the batch evaluators.
// The zero value is the default: the blocked layer-major path (bit-identical
// to the step-major reference, measurably faster — see blocked.go) with
// DefaultBlockSize.
type BatchOptions struct {
	// Stepped forces the step-major reference runner (RunObserved's loop
	// nest) instead of the blocked layer-major one.
	Stepped bool
	// BlockSize overrides the temporal block length of the blocked runner
	// (<= 0 selects DefaultBlockSize). Ignored when Stepped is set.
	BlockSize int
}

// RunBatch classifies every input across a worker pool and returns the
// per-image RunResults in input order. Each worker owns one State (reused
// across its images; each run resets it) and each image gets its own
// encoder from enc, so the results are bit-identical for any worker count:
// RunBatch(..., 1) is the serial reference and RunBatch(..., N) must match
// it exactly. workers <= 0 selects one worker per CPU. It runs the blocked
// layer-major path; RunBatchOpt escapes to the step-major reference.
func RunBatch(net *Network, inputs []tensor.Vec, enc EncoderFactory, steps, workers int) ([]RunResult, error) {
	return RunBatchOpt(net, inputs, enc, steps, workers, BatchOptions{})
}

// RunBatchOpt is RunBatch with an explicit runner selection.
func RunBatchOpt(net *Network, inputs []tensor.Vec, enc EncoderFactory, steps, workers int, opt BatchOptions) ([]RunResult, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("snn: empty batch")
	}
	if steps < 1 {
		return nil, fmt.Errorf("snn: steps %d", steps)
	}
	workers = parallel.Clamp(workers, len(inputs))
	states := make([]*State, workers)
	for w := range states {
		states[w] = NewState(net)
	}
	results := make([]RunResult, len(inputs))
	parallel.ForEach(len(inputs), workers, func(worker, i int) {
		st := states[worker]
		var r RunResult
		if opt.Stepped {
			r = st.Run(inputs[i], enc(i), steps)
		} else {
			r = st.RunBlockedK(inputs[i], enc(i), steps, opt.BlockSize, nil)
		}
		// States are reused across a worker's share, so detach the result
		// from the State scratch before the next image overwrites it.
		results[i] = r.Clone()
	})
	return results, nil
}

// EvaluateBatch classifies the inputs in parallel and returns accuracy
// against the labels. It is the worker-pool counterpart of Evaluate and is
// bit-identical to it when enc forks the same per-sample streams.
func EvaluateBatch(net *Network, inputs []tensor.Vec, labels []int, enc EncoderFactory, steps, workers int) (float64, error) {
	if len(inputs) != len(labels) {
		return 0, fmt.Errorf("snn: %d inputs vs %d labels", len(inputs), len(labels))
	}
	results, err := RunBatch(net, inputs, enc, steps, workers)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, r := range results {
		if r.Prediction == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(results)), nil
}
