package snn

import (
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

func benchMLP(b *testing.B) *Network {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	w1 := tensor.NewMat(512, 784)
	w2 := tensor.NewMat(10, 512)
	for i := range w1.Data {
		w1.Data[i] = rng.NormFloat64() * 0.05
	}
	for i := range w2.Data {
		w2.Data[i] = rng.NormFloat64() * 0.05
	}
	l1, err := NewDense("h", 784, 512, w1, 1)
	if err != nil {
		b.Fatal(err)
	}
	l2, err := NewDense("o", 512, 10, w2, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork("bench", tensor.Shape3{H: 28, W: 28, C: 1}, l1, l2)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkStepMLP measures one functional timestep of a 784-512-10 MLP at
// 15% input activity — the hot loop of every experiment.
func BenchmarkStepMLP(b *testing.B) {
	net := benchMLP(b)
	st := NewState(net)
	rng := rand.New(rand.NewSource(2))
	in := bitvec.New(784)
	for i := 0; i < 784; i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(in)
	}
}

// BenchmarkStepConv measures one timestep of a same-padded 3x3x32
// convolution layer (event-driven adjacency walk).
func BenchmarkStepConv(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 28, W: 28, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 32}
	w := tensor.NewMat(32, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.1
	}
	conv, err := NewConv("c", geom, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork("bench", geom.In, conv)
	if err != nil {
		b.Fatal(err)
	}
	st := NewState(net)
	in := bitvec.New(784)
	for i := 0; i < 784; i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(in)
	}
}

// BenchmarkIntegrateDense measures the dense event-driven integration kernel
// in isolation: per input spike, one contiguous W^T row accumulation.
func BenchmarkIntegrateDense(b *testing.B) {
	net := benchMLP(b)
	l := net.Layers[0]
	rng := rand.New(rand.NewSource(6))
	in := bitvec.New(l.InSize())
	for i := 0; i < l.InSize(); i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	v := tensor.NewVec(l.OutSize())
	l.transposedW() // build the cache outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		integrate(l, in, v)
	}
}

// BenchmarkIntegrateConv measures the convolutional integration kernel: per
// input spike, a walk over its resolved CSR taps (out index + weight).
func BenchmarkIntegrateConv(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 28, W: 28, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 32}
	w := tensor.NewMat(32, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.1
	}
	conv, err := NewConv("c", geom, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := bitvec.New(conv.InSize())
	for i := 0; i < conv.InSize(); i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	v := tensor.NewVec(conv.OutSize())
	conv.buildAdjacency()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		integrate(conv, in, v)
	}
}

// benchBatch builds a batch of random images for the evaluation-harness
// benchmarks.
func benchBatch(n, size int) []tensor.Vec {
	rng := rand.New(rand.NewSource(8))
	out := make([]tensor.Vec, n)
	for i := range out {
		v := tensor.NewVec(size)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func benchEval(b *testing.B, workers int) {
	net := benchMLP(b)
	inputs := benchBatch(16, net.Input.Size())
	base := NewPoissonEncoder(0.8, 9)
	enc := func(i int) Encoder { return base.ForkSeed(i) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(net, inputs, enc, 24, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalBatchSerial measures the batch evaluation harness on one
// worker — the serial reference path (one op = 16 images x 24 steps).
func BenchmarkEvalBatchSerial(b *testing.B) { benchEval(b, 1) }

// BenchmarkEvalBatchParallel measures the same batch fanned across one
// worker per CPU. Compare against BenchmarkEvalBatchSerial for the
// multi-core speedup (identical results by construction).
func BenchmarkEvalBatchParallel(b *testing.B) { benchEval(b, 0) }

// BenchmarkPoissonEncode measures rate encoding of one 28x28 image.
func BenchmarkPoissonEncode(b *testing.B) {
	enc := NewPoissonEncoder(0.8, 4)
	img := tensor.NewVec(784)
	rng := rand.New(rand.NewSource(5))
	for i := range img {
		img[i] = rng.Float64()
	}
	dst := bitvec.New(784)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(img, dst)
	}
}
