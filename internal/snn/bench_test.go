package snn

import (
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

func benchMLP(tb testing.TB) *Network {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	w1 := tensor.NewMat(512, 784)
	w2 := tensor.NewMat(10, 512)
	for i := range w1.Data {
		w1.Data[i] = rng.NormFloat64() * 0.05
	}
	for i := range w2.Data {
		w2.Data[i] = rng.NormFloat64() * 0.05
	}
	l1, err := NewDense("h", 784, 512, w1, 1)
	if err != nil {
		tb.Fatal(err)
	}
	l2, err := NewDense("o", 512, 10, w2, 1)
	if err != nil {
		tb.Fatal(err)
	}
	net, err := NewNetwork("bench", tensor.Shape3{H: 28, W: 28, C: 1}, l1, l2)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// BenchmarkStepMLP measures one functional timestep of a 784-512-10 MLP at
// 15% input activity — the hot loop of every experiment.
func BenchmarkStepMLP(b *testing.B) {
	net := benchMLP(b)
	st := NewState(net)
	rng := rand.New(rand.NewSource(2))
	in := bitvec.New(784)
	for i := 0; i < 784; i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(in)
	}
}

// BenchmarkStepConv measures one timestep of a same-padded 3x3x32
// convolution layer (event-driven adjacency walk).
func BenchmarkStepConv(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 28, W: 28, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 32}
	w := tensor.NewMat(32, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.1
	}
	conv, err := NewConv("c", geom, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork("bench", geom.In, conv)
	if err != nil {
		b.Fatal(err)
	}
	st := NewState(net)
	in := bitvec.New(784)
	for i := 0; i < 784; i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(in)
	}
}

// BenchmarkIntegrateDense measures the dense event-driven integration kernel
// in isolation: per input spike, one contiguous W^T row accumulation.
func BenchmarkIntegrateDense(b *testing.B) {
	net := benchMLP(b)
	l := net.Layers[0]
	rng := rand.New(rand.NewSource(6))
	in := bitvec.New(l.InSize())
	for i := 0; i < l.InSize(); i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	v := tensor.NewVec(l.OutSize())
	l.transposedW() // build the cache outside the timed loop
	buf := make([]int32, 0, l.InSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = integrate(l, in, v, buf[:0])
	}
}

// BenchmarkIntegrateConv measures the convolutional integration kernel: per
// input spike, a walk over its resolved CSR taps (out index + weight).
func BenchmarkIntegrateConv(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 28, W: 28, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 32}
	w := tensor.NewMat(32, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.1
	}
	conv, err := NewConv("c", geom, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := bitvec.New(conv.InSize())
	for i := 0; i < conv.InSize(); i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	v := tensor.NewVec(conv.OutSize())
	conv.buildAdjacency()
	buf := make([]int32, 0, conv.InSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = integrate(conv, in, v, buf[:0])
	}
}

// The integration kernels must not allocate once caches and the scratch
// buffer are warm — the buffer is reused across steps, never regrown.
func TestIntegrateAllocFree(t *testing.T) {
	net := benchMLP(t)
	dense := net.Layers[0]
	rng := rand.New(rand.NewSource(6))
	in := bitvec.New(dense.InSize())
	for i := 0; i < dense.InSize(); i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	v := tensor.NewVec(dense.OutSize())
	dense.transposedW()
	buf := make([]int32, 0, dense.InSize())
	if allocs := testing.AllocsPerRun(10, func() {
		buf = integrate(dense, in, v, buf[:0])
	}); allocs != 0 {
		t.Fatalf("dense integrate allocates %.0f/op, want 0", allocs)
	}
	cnn := benchMnistCNN(t)
	conv := cnn.Layers[0]
	cin := bitvec.New(conv.InSize())
	for i := 0; i < conv.InSize(); i++ {
		if rng.Float64() < 0.15 {
			cin.Set(i)
		}
	}
	cv := tensor.NewVec(conv.OutSize())
	conv.buildAdjacency()
	cbuf := make([]int32, 0, conv.InSize())
	if allocs := testing.AllocsPerRun(10, func() {
		cbuf = integrate(conv, cin, cv, cbuf[:0])
	}); allocs != 0 {
		t.Fatalf("conv integrate allocates %.0f/op, want 0", allocs)
	}
}

// benchCifarMLP rebuilds the cifar-mlp benchmark topology (the largest dense
// network of the Fig 10 suite) inline — internal/bench imports this package,
// so the shape is duplicated here to keep the benchmark in-package.
func benchCifarMLP(tb testing.TB) *Network {
	tb.Helper()
	rng := rand.New(rand.NewSource(40))
	sizes := []int{1024, 232, 1832, 1664, 40, 10}
	layers := make([]*Layer, 0, len(sizes)-1)
	for i := 1; i < len(sizes); i++ {
		w := tensor.NewMat(sizes[i], sizes[i-1])
		for j := range w.Data {
			w.Data[j] = rng.NormFloat64() * 0.08
		}
		l, err := NewDense("fc", sizes[i-1], sizes[i], w, 1)
		if err != nil {
			tb.Fatal(err)
		}
		layers = append(layers, l)
	}
	net, err := NewNetwork("cifar-mlp", tensor.Shape3{H: 32, W: 32, C: 1}, layers...)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

func benchImage(n int) tensor.Vec {
	rng := rand.New(rand.NewSource(41))
	img := tensor.NewVec(n)
	for i := range img {
		img[i] = rng.Float64()
	}
	return img
}

// BenchmarkRunSteppedCifarMLP measures one full classification (64 timesteps)
// of the cifar-mlp topology with the step-major reference runner.
func BenchmarkRunSteppedCifarMLP(b *testing.B) {
	net := benchCifarMLP(b)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.Run(img, enc, 64) // warm caches and scratch outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Run(img, enc, 64)
	}
}

// BenchmarkRunBlockedCifarMLP measures the same classification through the
// blocked layer-major runner (default block size). Compare against
// BenchmarkRunSteppedCifarMLP for the temporal-blocking speedup; results are
// bit-identical by construction (see blocked_test.go).
func BenchmarkRunBlockedCifarMLP(b *testing.B) {
	net := benchCifarMLP(b)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.RunBlocked(img, enc, 64, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.RunBlocked(img, enc, 64, nil)
	}
}

// Steady-state classification must not allocate: the encoder writes into the
// State's input vector and all counters live in State scratch.
func TestRunObservedAllocFree(t *testing.T) {
	net := benchMLP(t)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.Run(img, enc, 24) // first run builds W^T caches and sizes scratch
	allocs := testing.AllocsPerRun(5, func() { st.Run(img, enc, 24) })
	if allocs != 0 {
		t.Fatalf("Run allocates %.0f objects per classification on a warm State, want 0", allocs)
	}
}

// The blocked runner must also be allocation-free once its raster buffers
// are warm, for any block size at or below the warmed size.
func TestRunBlockedAllocFree(t *testing.T) {
	net := benchMLP(t)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.RunBlocked(img, enc, 24, nil)
	for _, k := range []int{0, 8, 1} {
		allocs := testing.AllocsPerRun(5, func() { st.RunBlockedK(img, enc, 24, k, nil) })
		if allocs != 0 {
			t.Fatalf("RunBlockedK(K=%d) allocates %.0f objects per classification on a warm State, want 0", k, allocs)
		}
	}
}

// benchBatch builds a batch of random images for the evaluation-harness
// benchmarks.
func benchBatch(n, size int) []tensor.Vec {
	rng := rand.New(rand.NewSource(8))
	out := make([]tensor.Vec, n)
	for i := range out {
		v := tensor.NewVec(size)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func benchEval(b *testing.B, workers int) {
	net := benchMLP(b)
	inputs := benchBatch(16, net.Input.Size())
	base := NewPoissonEncoder(0.8, 9)
	enc := func(i int) Encoder { return base.ForkSeed(i) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(net, inputs, enc, 24, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalBatchSerial measures the batch evaluation harness on one
// worker — the serial reference path (one op = 16 images x 24 steps).
func BenchmarkEvalBatchSerial(b *testing.B) { benchEval(b, 1) }

// BenchmarkEvalBatchParallel measures the same batch fanned across one
// worker per CPU. Compare against BenchmarkEvalBatchSerial for the
// multi-core speedup (identical results by construction).
func BenchmarkEvalBatchParallel(b *testing.B) { benchEval(b, 0) }

// BenchmarkPoissonEncode measures rate encoding of one 28x28 image.
func BenchmarkPoissonEncode(b *testing.B) {
	enc := NewPoissonEncoder(0.8, 4)
	img := tensor.NewVec(784)
	rng := rand.New(rand.NewSource(5))
	for i := range img {
		img[i] = rng.Float64()
	}
	dst := bitvec.New(784)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(img, dst)
	}
}

// benchMnistCNN rebuilds the mnist-cnn benchmark topology (conv 3x3x66 ->
// pool 2 -> conv 3x3x8 -> pool 2 -> fc 86 -> fc 10) inline with balanced
// thresholds, for the conv-panel kernel benchmarks. internal/bench imports
// this package, so the shape is duplicated here like benchCifarMLP.
func benchMnistCNN(tb testing.TB) *Network {
	tb.Helper()
	rng := rand.New(rand.NewSource(50))
	fill := func(w *tensor.Mat) float64 {
		var sum float64
		for i := range w.Data {
			var v float64
			if rng.Float64() < 0.7 {
				v = rng.Float64() * 0.1
			} else {
				v = -rng.Float64() * 0.05
			}
			w.Data[i] = v
			sum += v
		}
		return sum / float64(len(w.Data))
	}
	th := func(fanIn int, rateIn, meanW, rateOut float64) float64 {
		t := float64(fanIn) * rateIn * meanW / rateOut
		if t < 1e-3 {
			t = 1e-3
		}
		return t
	}
	in := tensor.Shape3{H: 28, W: 28, C: 1}
	g1 := tensor.ConvGeom{In: in, K: 3, Stride: 1, Pad: 1, OutC: 66}
	w1 := tensor.NewMat(66, g1.FanIn())
	m1 := fill(w1)
	conv1, err := NewConv("conv1", g1, w1, th(g1.FanIn(), 0.12, m1, 0.15))
	if err != nil {
		tb.Fatal(err)
	}
	pool1, err := NewPool("pool1", conv1.Out, 2, 0.499)
	if err != nil {
		tb.Fatal(err)
	}
	g2 := tensor.ConvGeom{In: pool1.Out, K: 3, Stride: 1, Pad: 1, OutC: 8}
	w2 := tensor.NewMat(8, g2.FanIn())
	m2 := fill(w2)
	conv2, err := NewConv("conv2", g2, w2, th(g2.FanIn(), 0.15, m2, 0.15))
	if err != nil {
		tb.Fatal(err)
	}
	pool2, err := NewPool("pool2", conv2.Out, 2, 0.499)
	if err != nil {
		tb.Fatal(err)
	}
	wf := tensor.NewMat(86, pool2.OutSize())
	mf := fill(wf)
	fc1, err := NewDense("fc1", pool2.OutSize(), 86, wf, th(pool2.OutSize(), 0.15, mf, 0.15))
	if err != nil {
		tb.Fatal(err)
	}
	wo := tensor.NewMat(10, 86)
	mo := fill(wo)
	fc2, err := NewDense("fc2", 86, 10, wo, th(86, 0.15, mo, 0.15))
	if err != nil {
		tb.Fatal(err)
	}
	net, err := NewNetwork("mnist-cnn-bench", in, conv1, pool1, conv2, pool2, fc1, fc2)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// BenchmarkRunBlockedMnistCNN measures one full 48-step classification of the
// mnist-cnn topology through the blocked conv/pool panel kernels.
func BenchmarkRunBlockedMnistCNN(b *testing.B) {
	net := benchMnistCNN(b)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.RunBlocked(img, enc, 48, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.RunBlocked(img, enc, 48, nil)
	}
}

// BenchmarkRunSteppedMnistCNN is the step-major reference for the conv-panel
// speedup (bit-identical results; see blocked_test.go).
func BenchmarkRunSteppedMnistCNN(b *testing.B) {
	net := benchMnistCNN(b)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.Run(img, enc, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Run(img, enc, 48)
	}
}

// BenchmarkRunBatchMajorMnistCNN measures one batch-major group (3 images x
// 48 steps) of the mnist-cnn topology — one op covers the same work as three
// BenchmarkRunBlockedMnistCNN ops with each layer's weights streamed once per
// group instead of once per image.
func BenchmarkRunBatchMajorMnistCNN(b *testing.B) {
	net := benchMnistCNN(b)
	const nb = 3
	bst := NewBatchState(net, nb)
	inputs := make([]tensor.Vec, nb)
	encs := make([]Encoder, nb)
	base := NewPoissonEncoder(0.8, 9)
	for i := range inputs {
		inputs[i] = benchImage(net.Input.Size())
		encs[i] = base.ForkSeed(i)
	}
	bst.RunBlocked(inputs, encs, 48, 0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bst.RunBlocked(inputs, encs, 48, 0, nil)
	}
}

// The blocked conv/pool panel kernels must be allocation-free on a warm
// State: the flat/offsets spike buffers and fire bytes all live in reused
// block scratch.
func TestRunBlockedConvAllocFree(t *testing.T) {
	net := benchMnistCNN(t)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.RunBlocked(img, enc, 48, nil)
	allocs := testing.AllocsPerRun(3, func() { st.RunBlocked(img, enc, 48, nil) })
	if allocs != 0 {
		t.Fatalf("blocked CNN run allocates %.0f objects per classification on a warm State, want 0", allocs)
	}
}

// Batch-major groups must also be allocation-free once warm.
func TestBatchMajorAllocFree(t *testing.T) {
	net := benchMnistCNN(t)
	const nb = 3
	bst := NewBatchState(net, nb)
	inputs := make([]tensor.Vec, nb)
	encs := make([]Encoder, nb)
	base := NewPoissonEncoder(0.8, 9)
	for i := range inputs {
		inputs[i] = benchImage(net.Input.Size())
		encs[i] = base.ForkSeed(i)
	}
	bst.RunBlocked(inputs, encs, 48, 0, nil)
	allocs := testing.AllocsPerRun(3, func() { bst.RunBlocked(inputs, encs, 48, 0, nil) })
	if allocs != 0 {
		t.Fatalf("batch-major run allocates %.0f objects per group on a warm BatchState, want 0", allocs)
	}
}
