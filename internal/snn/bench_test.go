package snn

import (
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

func benchMLP(tb testing.TB) *Network {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	w1 := tensor.NewMat(512, 784)
	w2 := tensor.NewMat(10, 512)
	for i := range w1.Data {
		w1.Data[i] = rng.NormFloat64() * 0.05
	}
	for i := range w2.Data {
		w2.Data[i] = rng.NormFloat64() * 0.05
	}
	l1, err := NewDense("h", 784, 512, w1, 1)
	if err != nil {
		tb.Fatal(err)
	}
	l2, err := NewDense("o", 512, 10, w2, 1)
	if err != nil {
		tb.Fatal(err)
	}
	net, err := NewNetwork("bench", tensor.Shape3{H: 28, W: 28, C: 1}, l1, l2)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// BenchmarkStepMLP measures one functional timestep of a 784-512-10 MLP at
// 15% input activity — the hot loop of every experiment.
func BenchmarkStepMLP(b *testing.B) {
	net := benchMLP(b)
	st := NewState(net)
	rng := rand.New(rand.NewSource(2))
	in := bitvec.New(784)
	for i := 0; i < 784; i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(in)
	}
}

// BenchmarkStepConv measures one timestep of a same-padded 3x3x32
// convolution layer (event-driven adjacency walk).
func BenchmarkStepConv(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 28, W: 28, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 32}
	w := tensor.NewMat(32, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.1
	}
	conv, err := NewConv("c", geom, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork("bench", geom.In, conv)
	if err != nil {
		b.Fatal(err)
	}
	st := NewState(net)
	in := bitvec.New(784)
	for i := 0; i < 784; i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(in)
	}
}

// BenchmarkIntegrateDense measures the dense event-driven integration kernel
// in isolation: per input spike, one contiguous W^T row accumulation.
func BenchmarkIntegrateDense(b *testing.B) {
	net := benchMLP(b)
	l := net.Layers[0]
	rng := rand.New(rand.NewSource(6))
	in := bitvec.New(l.InSize())
	for i := 0; i < l.InSize(); i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	v := tensor.NewVec(l.OutSize())
	l.transposedW() // build the cache outside the timed loop
	buf := make([]int32, 0, l.InSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = integrate(l, in, v, buf[:0])
	}
}

// BenchmarkIntegrateConv measures the convolutional integration kernel: per
// input spike, a walk over its resolved CSR taps (out index + weight).
func BenchmarkIntegrateConv(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 28, W: 28, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 32}
	w := tensor.NewMat(32, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.1
	}
	conv, err := NewConv("c", geom, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := bitvec.New(conv.InSize())
	for i := 0; i < conv.InSize(); i++ {
		if rng.Float64() < 0.15 {
			in.Set(i)
		}
	}
	v := tensor.NewVec(conv.OutSize())
	conv.buildAdjacency()
	buf := make([]int32, 0, conv.InSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = integrate(conv, in, v, buf[:0])
	}
}

// benchCifarMLP rebuilds the cifar-mlp benchmark topology (the largest dense
// network of the Fig 10 suite) inline — internal/bench imports this package,
// so the shape is duplicated here to keep the benchmark in-package.
func benchCifarMLP(tb testing.TB) *Network {
	tb.Helper()
	rng := rand.New(rand.NewSource(40))
	sizes := []int{1024, 232, 1832, 1664, 40, 10}
	layers := make([]*Layer, 0, len(sizes)-1)
	for i := 1; i < len(sizes); i++ {
		w := tensor.NewMat(sizes[i], sizes[i-1])
		for j := range w.Data {
			w.Data[j] = rng.NormFloat64() * 0.08
		}
		l, err := NewDense("fc", sizes[i-1], sizes[i], w, 1)
		if err != nil {
			tb.Fatal(err)
		}
		layers = append(layers, l)
	}
	net, err := NewNetwork("cifar-mlp", tensor.Shape3{H: 32, W: 32, C: 1}, layers...)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

func benchImage(n int) tensor.Vec {
	rng := rand.New(rand.NewSource(41))
	img := tensor.NewVec(n)
	for i := range img {
		img[i] = rng.Float64()
	}
	return img
}

// BenchmarkRunSteppedCifarMLP measures one full classification (64 timesteps)
// of the cifar-mlp topology with the step-major reference runner.
func BenchmarkRunSteppedCifarMLP(b *testing.B) {
	net := benchCifarMLP(b)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.Run(img, enc, 64) // warm caches and scratch outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Run(img, enc, 64)
	}
}

// BenchmarkRunBlockedCifarMLP measures the same classification through the
// blocked layer-major runner (default block size). Compare against
// BenchmarkRunSteppedCifarMLP for the temporal-blocking speedup; results are
// bit-identical by construction (see blocked_test.go).
func BenchmarkRunBlockedCifarMLP(b *testing.B) {
	net := benchCifarMLP(b)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.RunBlocked(img, enc, 64, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.RunBlocked(img, enc, 64, nil)
	}
}

// Steady-state classification must not allocate: the encoder writes into the
// State's input vector and all counters live in State scratch.
func TestRunObservedAllocFree(t *testing.T) {
	net := benchMLP(t)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.Run(img, enc, 24) // first run builds W^T caches and sizes scratch
	allocs := testing.AllocsPerRun(5, func() { st.Run(img, enc, 24) })
	if allocs != 0 {
		t.Fatalf("Run allocates %.0f objects per classification on a warm State, want 0", allocs)
	}
}

// The blocked runner must also be allocation-free once its raster buffers
// are warm, for any block size at or below the warmed size.
func TestRunBlockedAllocFree(t *testing.T) {
	net := benchMLP(t)
	st := NewState(net)
	img := benchImage(net.Input.Size())
	enc := NewPoissonEncoder(0.8, 9)
	st.RunBlocked(img, enc, 24, nil)
	for _, k := range []int{0, 8, 1} {
		allocs := testing.AllocsPerRun(5, func() { st.RunBlockedK(img, enc, 24, k, nil) })
		if allocs != 0 {
			t.Fatalf("RunBlockedK(K=%d) allocates %.0f objects per classification on a warm State, want 0", k, allocs)
		}
	}
}

// benchBatch builds a batch of random images for the evaluation-harness
// benchmarks.
func benchBatch(n, size int) []tensor.Vec {
	rng := rand.New(rand.NewSource(8))
	out := make([]tensor.Vec, n)
	for i := range out {
		v := tensor.NewVec(size)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func benchEval(b *testing.B, workers int) {
	net := benchMLP(b)
	inputs := benchBatch(16, net.Input.Size())
	base := NewPoissonEncoder(0.8, 9)
	enc := func(i int) Encoder { return base.ForkSeed(i) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(net, inputs, enc, 24, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalBatchSerial measures the batch evaluation harness on one
// worker — the serial reference path (one op = 16 images x 24 steps).
func BenchmarkEvalBatchSerial(b *testing.B) { benchEval(b, 1) }

// BenchmarkEvalBatchParallel measures the same batch fanned across one
// worker per CPU. Compare against BenchmarkEvalBatchSerial for the
// multi-core speedup (identical results by construction).
func BenchmarkEvalBatchParallel(b *testing.B) { benchEval(b, 0) }

// BenchmarkPoissonEncode measures rate encoding of one 28x28 image.
func BenchmarkPoissonEncode(b *testing.B) {
	enc := NewPoissonEncoder(0.8, 4)
	img := tensor.NewVec(784)
	rng := rand.New(rand.NewSource(5))
	for i := range img {
		img[i] = rng.Float64()
	}
	dst := bitvec.New(784)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(img, dst)
	}
}
