//go:build !amd64

package snn

// accumPanel adds, for every spiking input index in list (ascending, one
// entry per spike of one timestep), the eight packed panel weights of that
// input into the eight lane accumulators. Portable reference implementation;
// amd64 has an SSE2 version (accum_amd64.s) that is bit-identical. Eight
// independent accumulation chains keep the FP add ports busy; the two-spike
// unroll amortizes loop control while each lane's adds stay in ascending
// spike order (wa before wb).
func accumPanel(panel []float64, list []int32, acc *[panelLanes]float64) {
	p0, p1, p2, p3 := acc[0], acc[1], acc[2], acc[3]
	p4, p5, p6, p7 := acc[4], acc[5], acc[6], acc[7]
	n := 0
	for ; n+2 <= len(list); n += 2 {
		ia, ib := int(list[n])*panelLanes, int(list[n+1])*panelLanes
		wa := panel[ia : ia+panelLanes : ia+panelLanes]
		wb := panel[ib : ib+panelLanes : ib+panelLanes]
		p0 += wa[0]
		p1 += wa[1]
		p2 += wa[2]
		p3 += wa[3]
		p4 += wa[4]
		p5 += wa[5]
		p6 += wa[6]
		p7 += wa[7]
		p0 += wb[0]
		p1 += wb[1]
		p2 += wb[2]
		p3 += wb[3]
		p4 += wb[4]
		p5 += wb[5]
		p6 += wb[6]
		p7 += wb[7]
	}
	for ; n < len(list); n++ {
		ia := int(list[n]) * panelLanes
		wa := panel[ia : ia+panelLanes : ia+panelLanes]
		p0 += wa[0]
		p1 += wa[1]
		p2 += wa[2]
		p3 += wa[3]
		p4 += wa[4]
		p5 += wa[5]
		p6 += wa[6]
		p7 += wa[7]
	}
	acc[0], acc[1], acc[2], acc[3] = p0, p1, p2, p3
	acc[4], acc[5], acc[6], acc[7] = p4, p5, p6, p7
}

// blockPanel integrates one packed 8-lane panel across a whole temporal
// block (no leak); portable reference of the amd64 SSE2 version. Step k
// adds the panel lines of flat[offs[k]:offs[k+1]] into the accumulators in
// list order, then thresholds and resets each lane — the exact per-lane
// sequence of the step-major reference. fires[k] receives step k's
// fired-lane byte; the result has bit k set when fires[k] != 0.
func blockPanel(panel []float64, flat []int32, offs []int32, fires []uint8, acc *[panelLanes]float64, th float64, hard bool) uint64 {
	var fireSteps uint64
	for k := range fires {
		for _, idx := range flat[offs[k]:offs[k+1]] {
			ia := int(idx) * panelLanes
			line := panel[ia : ia+panelLanes : ia+panelLanes]
			for i := range acc {
				acc[i] += line[i]
			}
		}
		var mask uint8
		for i, p := range acc {
			if p >= th {
				mask |= 1 << uint(i)
				acc[i] = resetPotential(p, th, hard)
			}
		}
		fires[k] = mask
		if mask != 0 {
			fireSteps |= 1 << uint(k)
		}
	}
	return fireSteps
}
