// Equivalence suite for the blocked layer-major runner: RunBlockedK must be
// bit-identical to the step-major RunObserved reference — same RunResult and
// the same per-step observer view — for every layer kind, reset mode, leak,
// quantization, and block size.
package snn_test

import (
	"fmt"
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/quant"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// mlpFixture builds a 3-layer MLP; leak/hard apply to the hidden layers so
// the blocked dense kernel is exercised with decay and both reset modes.
func mlpFixture(t *testing.T, leak float64, hard bool) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(417))
	sizes := []int{48, 37, 21, 6}
	layers := make([]*snn.Layer, 0, len(sizes)-1)
	for i := 1; i < len(sizes); i++ {
		w := tensor.NewMat(sizes[i], sizes[i-1])
		for j := range w.Data {
			w.Data[j] = rng.NormFloat64() * 0.35
		}
		l, err := snn.NewDense(fmt.Sprintf("d%d", i), sizes[i-1], sizes[i], w, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(sizes)-1 {
			l.Leak = leak
			l.HardReset = hard
		}
		layers = append(layers, l)
	}
	net, err := snn.NewNetwork("mlp-eq", tensor.Shape3{H: 6, W: 8, C: 1}, layers...)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// rasterRecorder captures the full step-major spike history of a run so two
// runs can be compared event for event.
type rasterRecorder struct {
	input  [][]int32   // per step, input spike indices
	layers [][][]int32 // per step, per layer, output spike indices
}

func (r *rasterRecorder) ObserveStep(t int, input *bitvec.Bits, layers []*bitvec.Bits) {
	r.input = append(r.input, input.AppendSet(nil))
	step := make([][]int32, len(layers))
	for i, l := range layers {
		step[i] = l.AppendSet(nil)
	}
	r.layers = append(r.layers, step)
}

func equalIdx(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertBlockedMatchesStepped runs the same classification through the
// step-major reference and the blocked runner and requires identical results
// and identical observed rasters.
func assertBlockedMatchesStepped(t *testing.T, net *snn.Network, steps, blockK int) {
	t.Helper()
	in := make(tensor.Vec, net.Input.Size())
	for i := range in {
		in[i] = float64((i*13+5)%100) / 99
	}
	sSt, bSt := snn.NewState(net), snn.NewState(net)
	var sRec, bRec rasterRecorder
	sr := sSt.RunObserved(in, snn.NewPoissonEncoder(0.8, 23), steps, &sRec)
	br := bSt.RunBlockedK(in, snn.NewPoissonEncoder(0.8, 23), steps, blockK, &bRec)
	if sr.Prediction != br.Prediction || sr.InputSpikes != br.InputSpikes || sr.Steps != br.Steps {
		t.Fatalf("K=%d: prediction %d/%d, input spikes %d/%d, steps %d/%d",
			blockK, sr.Prediction, br.Prediction, sr.InputSpikes, br.InputSpikes, sr.Steps, br.Steps)
	}
	for c := range sr.OutCounts {
		if sr.OutCounts[c] != br.OutCounts[c] || sr.FirstSpike[c] != br.FirstSpike[c] {
			t.Fatalf("K=%d class %d: counts %d/%d, first spike %d/%d",
				blockK, c, sr.OutCounts[c], br.OutCounts[c], sr.FirstSpike[c], br.FirstSpike[c])
		}
	}
	if len(sRec.input) != steps || len(bRec.input) != steps {
		t.Fatalf("K=%d: observed %d/%d steps, want %d", blockK, len(sRec.input), len(bRec.input), steps)
	}
	for step := range sRec.input {
		if !equalIdx(sRec.input[step], bRec.input[step]) {
			t.Fatalf("K=%d step %d: input rasters differ", blockK, step)
		}
		for li := range sRec.layers[step] {
			if !equalIdx(sRec.layers[step][li], bRec.layers[step][li]) {
				t.Fatalf("K=%d step %d layer %d: rasters differ\nstepped %v\nblocked %v",
					blockK, step, li, sRec.layers[step][li], bRec.layers[step][li])
			}
		}
	}
	// The post-run step views must match too (consumers peek at LayerSpikes).
	if !equalIdx(sSt.InputSpikes().AppendSet(nil), bSt.InputSpikes().AppendSet(nil)) {
		t.Fatalf("K=%d: final InputSpikes views differ", blockK)
	}
	for li := range net.Layers {
		if !equalIdx(sSt.LayerSpikes(li).AppendSet(nil), bSt.LayerSpikes(li).AppendSet(nil)) {
			t.Fatalf("K=%d: final LayerSpikes(%d) views differ", blockK, li)
		}
	}
}

var blockSizes = []int{1, 7, 64}

// The blocked runner matches the reference on a plain IF MLP for block sizes
// smaller than, dividing, and exceeding the step count.
func TestBlockedMatchesSteppedMLP(t *testing.T) {
	net := mlpFixture(t, 0, false)
	for _, k := range blockSizes {
		assertBlockedMatchesStepped(t, net, 20, k)
	}
}

// Leaky integration (per-step decay inside the block) stays bit-identical.
func TestBlockedMatchesSteppedLeaky(t *testing.T) {
	net := mlpFixture(t, 0.12, false)
	for _, k := range blockSizes {
		assertBlockedMatchesStepped(t, net, 20, k)
	}
}

// Hard reset (potential to zero on fire) stays bit-identical.
func TestBlockedMatchesSteppedHardReset(t *testing.T) {
	net := mlpFixture(t, 0.05, true)
	for _, k := range blockSizes {
		assertBlockedMatchesStepped(t, net, 20, k)
	}
}

// The conv+pool+dense topology exercises the event-driven block path.
func TestBlockedMatchesSteppedConvPool(t *testing.T) {
	net := convPoolFixture(t)
	for _, k := range blockSizes {
		assertBlockedMatchesStepped(t, net, 20, k)
	}
}

// 4-bit quantized weights (the memristive crossbar configuration) stay
// bit-identical through the blocked path.
func TestBlockedMatchesSteppedQuantized(t *testing.T) {
	qnet, err := quant.QuantizeNetwork(convPoolFixture(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range blockSizes {
		assertBlockedMatchesStepped(t, qnet, 20, k)
	}
}

// RunBlocked (default block size) matches Run on a stateful deterministic
// encoder: the blocked runner must invoke Encode in strict timestep order.
func TestBlockedDefaultWithRegularEncoder(t *testing.T) {
	net := mlpFixture(t, 0, false)
	in := make(tensor.Vec, net.Input.Size())
	for i := range in {
		in[i] = float64((i*7+3)%50) / 49
	}
	sSt, bSt := snn.NewState(net), snn.NewState(net)
	sr := sSt.Run(in, snn.NewRegularEncoder(0.7), 30)
	br := bSt.RunBlocked(in, snn.NewRegularEncoder(0.7), 30, nil)
	if sr.Prediction != br.Prediction || sr.InputSpikes != br.InputSpikes {
		t.Fatalf("prediction %d/%d, input spikes %d/%d",
			sr.Prediction, br.Prediction, sr.InputSpikes, br.InputSpikes)
	}
	for c := range sr.OutCounts {
		if sr.OutCounts[c] != br.OutCounts[c] {
			t.Fatalf("class %d: counts %d/%d", c, sr.OutCounts[c], br.OutCounts[c])
		}
	}
}

// A State must be reusable across blocked runs with different block sizes
// and interleaved step-major runs without cross-contamination.
func TestBlockedStateReuse(t *testing.T) {
	net := mlpFixture(t, 0.1, false)
	in := make(tensor.Vec, net.Input.Size())
	for i := range in {
		in[i] = float64((i*11+1)%80) / 79
	}
	st := snn.NewState(net)
	ref := snn.NewState(net).Run(in, snn.NewPoissonEncoder(0.8, 5), 24).Clone()
	for trial, k := range []int{64, 3, 24, 1, 5} {
		got := st.RunBlockedK(in, snn.NewPoissonEncoder(0.8, 5), 24, k, nil)
		for c := range ref.OutCounts {
			if ref.OutCounts[c] != got.OutCounts[c] {
				t.Fatalf("trial %d (K=%d) class %d: counts %d want %d",
					trial, k, c, got.OutCounts[c], ref.OutCounts[c])
			}
		}
		// Interleave a step-major run on the same State.
		mid := st.Run(in, snn.NewPoissonEncoder(0.8, 5), 24)
		if mid.Prediction != ref.Prediction {
			t.Fatalf("trial %d: interleaved stepped run diverged", trial)
		}
	}
}
