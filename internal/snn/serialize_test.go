package snn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

func serializeFixture(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 8, W: 8, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 4}
	cw := tensor.NewMat(4, 9)
	for i := range cw.Data {
		cw.Data[i] = rng.NormFloat64() * 0.3
	}
	conv, err := NewConv("conv", geom, cw, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	conv.Leak = 0.1
	pool, err := NewPool("pool", tensor.Shape3{H: 8, W: 8, C: 4}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	dw := tensor.NewMat(5, 64)
	for i := range dw.Data {
		dw.Data[i] = rng.NormFloat64() * 0.3
	}
	fc, err := NewDense("fc", 64, 5, dw, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("roundtrip", geom.In, conv, pool, fc)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// A serialized network must load back functionally identical: same shapes,
// weights, thresholds, leak — and bit-identical spike trains.
func TestNetworkRoundTrip(t *testing.T) {
	net := serializeFixture(t)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != net.Name || got.Input != net.Input || len(got.Layers) != len(net.Layers) {
		t.Fatalf("structure mismatch: %+v", got)
	}
	for i, l := range net.Layers {
		g := got.Layers[i]
		if g.Kind != l.Kind || g.Name != l.Name || g.Threshold != l.Threshold || g.Leak != l.Leak {
			t.Fatalf("layer %d metadata mismatch", i)
		}
		if (g.W == nil) != (l.W == nil) {
			t.Fatalf("layer %d weight presence mismatch", i)
		}
		if l.W != nil {
			for j := range l.W.Data {
				if g.W.Data[j] != l.W.Data[j] {
					t.Fatalf("layer %d weight %d differs", i, j)
				}
			}
		}
	}
	// Spike-train equivalence.
	a, b := NewState(net), NewState(got)
	rng := rand.New(rand.NewSource(72))
	in := bitvec.New(net.Input.Size())
	for step := 0; step < 20; step++ {
		in.Reset()
		for i := 0; i < in.Len(); i++ {
			if rng.Float64() < 0.3 {
				in.Set(i)
			}
		}
		oa, ob := a.Step(in), b.Step(in)
		for i := 0; i < oa.Len(); i++ {
			if oa.Get(i) != ob.Get(i) {
				t.Fatalf("step %d: loaded network diverged at %d", step, i)
			}
		}
	}
}

func TestReadNetworkErrors(t *testing.T) {
	if _, err := ReadNetwork(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Corrupt: weight length mismatch.
	net := serializeFixture(t)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	// Truncated stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadNetwork(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
