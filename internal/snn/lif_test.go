package snn

import (
	"math"
	"math/rand"
	"testing"

	"resparc/internal/ann"
	"resparc/internal/bitvec"
	"resparc/internal/dataset"
	"resparc/internal/tensor"
)

// A leaky neuron fed below-threshold current must decay back toward rest
// instead of eventually firing.
func TestLIFDecay(t *testing.T) {
	w := tensor.NewMat(1, 1)
	w.Set(0, 0, 0.3)
	l, err := NewDense("lif", 1, 1, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Leak = 0.5
	net, err := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 1}, l)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(net)
	in := bitvec.New(1)
	in.Set(0)
	// Steady drive of 0.3 with 50% leak converges to v = 0.3/(0.5) = 0.6 < 1:
	// never fires.
	for step := 0; step < 200; step++ {
		if st.Step(in).Get(0) {
			t.Fatalf("leaky neuron fired at step %d with sub-threshold steady state", step)
		}
	}
	if math.Abs(st.Vmem[0][0]-0.6) > 1e-6 {
		t.Fatalf("steady-state potential %v, want 0.6", st.Vmem[0][0])
	}
	// The same drive without leak integrates without bound and fires.
	l.Leak = 0
	st2 := NewState(net)
	fired := false
	for step := 0; step < 10; step++ {
		if st2.Step(in).Get(0) {
			fired = true
		}
	}
	if !fired {
		t.Fatal("pure IF neuron must fire under steady drive")
	}
}

// Leak only shortens memory: with strong supra-threshold drive LIF and IF
// both fire, LIF no more often than IF.
func TestLIFRateBelowIF(t *testing.T) {
	build := func(leak float64) *State {
		w := tensor.NewMat(1, 1)
		w.Set(0, 0, 0.7)
		l, _ := NewDense("n", 1, 1, w, 1)
		l.Leak = leak
		net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 1}, l)
		return NewState(net)
	}
	ifState, lifState := build(0), build(0.2)
	in := bitvec.New(1)
	in.Set(0)
	ifSpikes, lifSpikes := 0, 0
	for step := 0; step < 100; step++ {
		if ifState.Step(in).Get(0) {
			ifSpikes++
		}
		if lifState.Step(in).Get(0) {
			lifSpikes++
		}
	}
	if lifSpikes == 0 {
		t.Fatal("supra-threshold LIF must fire")
	}
	if lifSpikes > ifSpikes {
		t.Fatalf("LIF fired more (%d) than IF (%d)", lifSpikes, ifSpikes)
	}
}

// Hard reset discards the above-threshold residue: with drive 1.7 and
// threshold 1, subtraction keeps 0.7 while hard reset returns to zero —
// so the hard-reset neuron fires less often.
func TestHardReset(t *testing.T) {
	build := func(hard bool) *State {
		w := tensor.NewMat(1, 1)
		w.Set(0, 0, 0.7)
		l, _ := NewDense("n", 1, 1, w, 1)
		l.HardReset = hard
		net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 1}, l)
		return NewState(net)
	}
	sub, hard := build(false), build(true)
	in := bitvec.New(1)
	in.Set(0)
	subSpikes, hardSpikes := 0, 0
	for step := 0; step < 100; step++ {
		if sub.Step(in).Get(0) {
			subSpikes++
		}
		if hard.Step(in).Get(0) {
			hardSpikes++
		}
	}
	// Subtraction preserves the rate: 0.7 in -> ~70 spikes (one may still
	// be pending in the membrane at the cutoff). Hard reset discards
	// residue: fires every ceil(1/0.7)=2 steps -> 50.
	if subSpikes < 69 || subSpikes > 70 {
		t.Fatalf("reset-by-subtraction fired %d, want ~70", subSpikes)
	}
	if hardSpikes >= subSpikes {
		t.Fatalf("hard reset fired %d >= subtraction %d", hardSpikes, subSpikes)
	}
	if hardSpikes != 50 {
		t.Fatalf("hard reset fired %d, want 50", hardSpikes)
	}
}

// Time-to-first-spike decoding: the neuron with the strongest drive fires
// first and wins even when rate decoding would also pick it.
func TestTTFSPrediction(t *testing.T) {
	w := tensor.NewMat(3, 1)
	w.Set(0, 0, 0.2) // fires at step 5
	w.Set(1, 0, 0.5) // fires at step 2
	w.Set(2, 0, 0.0) // never fires
	l, _ := NewDense("d", 1, 3, w, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 1}, l)
	st := NewState(net)
	res := st.Run(tensor.Vec{1}, NewRegularEncoder(1), 12)
	if res.FirstSpike[1] < 0 || res.FirstSpike[0] < 0 {
		t.Fatalf("first spikes not recorded: %v", res.FirstSpike)
	}
	if res.FirstSpike[1] >= res.FirstSpike[0] {
		t.Fatalf("stronger neuron should fire first: %v", res.FirstSpike)
	}
	if res.FirstSpike[2] != -1 {
		t.Fatalf("silent neuron has first spike %d", res.FirstSpike[2])
	}
	if got := res.TTFSPrediction(); got != 1 {
		t.Fatalf("TTFS prediction %d, want 1", got)
	}
	if res.Prediction != 1 {
		t.Fatalf("rate prediction %d, want 1", res.Prediction)
	}
	// All-silent run decodes to -1.
	st2 := NewState(net)
	silent := st2.Run(tensor.Vec{0}, NewRegularEncoder(1), 5)
	if silent.TTFSPrediction() != -1 {
		t.Fatalf("silent TTFS = %d", silent.TTFSPrediction())
	}
}

// TTFS decoding on a trained network costs some accuracy but remains far
// above chance.
func TestEvaluateTTFS(t *testing.T) {
	train := dataset.Generate(dataset.Digits, 300, 91)
	test := dataset.Generate(dataset.Digits, 60, 92)
	rng := rand.New(rand.NewSource(93))
	mlp := ann.NewMLP(train.Shape.Size(), []int{40}, 10, rng)
	cfg := ann.DefaultTrainConfig()
	cfg.Epochs = 6
	cfg.LR = 0.01
	mlp.Train(train, cfg)
	calib, _ := train.Split(60)
	net, err := FromANN("ttfs", mlp, calib)
	if err != nil {
		t.Fatal(err)
	}
	rate := Evaluate(net, test, NewPoissonEncoder(0.9, 94), 100)
	ttfs := EvaluateTTFS(net, test, NewPoissonEncoder(0.9, 94), 100)
	if rate < 0.6 {
		t.Fatalf("rate accuracy %.2f too low to compare", rate)
	}
	if ttfs < 0.3 {
		t.Fatalf("TTFS accuracy %.2f collapsed", ttfs)
	}
	if ttfs > rate+0.1 {
		t.Fatalf("TTFS (%v) should not beat rate decoding (%v) by a margin", ttfs, rate)
	}
	if EvaluateTTFS(net, &dataset.Set{}, NewPoissonEncoder(0.9, 1), 5) != 0 {
		t.Fatal("empty set should be 0")
	}
}

func TestConfusionMatrix(t *testing.T) {
	// Two trivially separable "classes": output neuron i fires iff input i
	// is active, so classification is perfect and the confusion matrix is
	// diagonal.
	w := tensor.NewMat(2, 2)
	w.Set(0, 0, 1)
	w.Set(1, 1, 1)
	l, _ := NewDense("d", 2, 2, w, 0.9)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 2}, l)
	set := &dataset.Set{
		Name: "toy", Shape: tensor.Shape3{H: 1, W: 1, C: 2}, Classes: 2,
		Samples: []dataset.Sample{
			{Input: tensor.Vec{1, 0}, Label: 0},
			{Input: tensor.Vec{0, 1}, Label: 1},
			{Input: tensor.Vec{1, 0}, Label: 0},
		},
	}
	m := ConfusionMatrix(net, set, NewRegularEncoder(1), 10)
	if m[0][0] != 2 || m[1][1] != 1 || m[0][1] != 0 || m[1][0] != 0 {
		t.Fatalf("confusion matrix %v", m)
	}
}
