package snn

import (
	"math"
	"math/rand"
	"testing"

	"resparc/internal/ann"
	"resparc/internal/bitvec"
	"resparc/internal/dataset"
	"resparc/internal/tensor"
)

// One IF neuron with weight 0.5 and threshold 1: it must fire exactly every
// second input spike (integrate 0.5, 1.0 -> fire, subtract, repeat).
func TestIFAccumulateAndFire(t *testing.T) {
	w := tensor.NewMat(1, 1)
	w.Set(0, 0, 0.5)
	l, err := NewDense("d", 1, 1, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 1}, l)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(net)
	in := bitvec.New(1)
	in.Set(0)
	fires := 0
	for step := 0; step < 10; step++ {
		out := st.Step(in)
		if out.Get(0) {
			fires++
			if step%2 == 0 {
				t.Fatalf("fired on even step %d (should fire on odd steps)", step)
			}
		}
	}
	if fires != 5 {
		t.Fatalf("fired %d times in 10 steps, want 5", fires)
	}
}

// Reset-by-subtraction: potential 1.7 with threshold 1 leaves 0.7 behind.
func TestResetBySubtraction(t *testing.T) {
	w := tensor.NewMat(1, 1)
	w.Set(0, 0, 1.7)
	l, _ := NewDense("d", 1, 1, w, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 1}, l)
	st := NewState(net)
	in := bitvec.New(1)
	in.Set(0)
	out := st.Step(in)
	if !out.Get(0) {
		t.Fatal("must fire at 1.7 >= 1")
	}
	if math.Abs(st.Vmem[0][0]-0.7) > 1e-12 {
		t.Fatalf("residual potential %v, want 0.7", st.Vmem[0][0])
	}
}

// No input spikes -> no output spikes, ever (event-driven silence).
func TestSilenceStaysSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.NewMat(5, 5)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	l, _ := NewDense("d", 5, 5, w, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 5}, l)
	st := NewState(net)
	in := bitvec.New(5)
	for i := 0; i < 20; i++ {
		if st.Step(in).Any() {
			t.Fatal("spikes from silence")
		}
	}
}

// The event-driven conv integration must equal a dense reference computed
// from the same geometry.
func TestConvIntegrationMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 6, W: 6, C: 2}, K: 3, Stride: 1, Pad: 1, OutC: 4}
	w := tensor.NewMat(4, geom.FanIn())
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	conv, err := NewConv("c", geom, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference matrix.
	out, _ := geom.OutShape()
	ref := tensor.NewMat(out.Size(), geom.In.Size())
	_ = geom.ForEachTap(func(outIdx, inIdx, kIdx int) {
		if inIdx < 0 {
			return
		}
		ref.Set(outIdx, inIdx, ref.At(outIdx, inIdx)+w.At(outIdx%geom.OutC, kIdx))
	})
	in := bitvec.New(geom.In.Size())
	for i := 0; i < geom.In.Size(); i += 3 {
		in.Set(i)
	}
	got := tensor.NewVec(out.Size())
	integrate(conv, in, got, nil)
	x := tensor.NewVec(geom.In.Size())
	in.ForEachSet(func(i int) { x[i] = 1 })
	want := ref.MulVec(x, nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("conv integrate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Pool layer: all 4 window inputs spiking -> potential 1 >= 0.499 fires.
func TestPoolIntegration(t *testing.T) {
	p, err := NewPool("p", tensor.Shape3{H: 2, W: 2, C: 1}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	net, _ := NewNetwork("n", tensor.Shape3{H: 2, W: 2, C: 1}, p)
	st := NewState(net)
	in := bitvec.New(4)
	in.Set(0)
	in.Set(1)
	out := st.Step(in) // 2 of 4 -> 0.5 >= 0.499 fires
	if !out.Get(0) {
		t.Fatal("pool neuron should fire with half window active")
	}
	st.Reset()
	in.Reset()
	in.Set(0)
	out = st.Step(in) // 0.25 < 0.499
	if out.Get(0) {
		t.Fatal("pool neuron fired with quarter window active")
	}
}

// Rate preservation: for a single-weight chain under the unit threshold, the
// output spike rate approaches weight * input rate.
func TestRateTransfer(t *testing.T) {
	w := tensor.NewMat(1, 1)
	w.Set(0, 0, 0.6)
	l, _ := NewDense("d", 1, 1, w, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 1}, l)
	st := NewState(net)
	enc := NewPoissonEncoder(0.8, 42)
	res := st.Run(tensor.Vec{1}, enc, 2000)
	inRate := float64(res.InputSpikes) / 2000
	outRate := float64(res.OutCounts[0]) / 2000
	want := inRate * 0.6
	if math.Abs(outRate-want) > 0.05 {
		t.Fatalf("out rate %v, want ~%v (in rate %v)", outRate, want, inRate)
	}
}

func TestPoissonEncoderBounds(t *testing.T) {
	enc := NewPoissonEncoder(1, 1)
	dst := bitvec.New(3)
	enc.Encode(tensor.Vec{0, 0, 0}, dst)
	if dst.Any() {
		t.Fatal("zero intensity must never spike")
	}
	enc.Encode(tensor.Vec{1, 1, 1}, dst)
	// With MaxProb 1 and intensity 1 every neuron spikes.
	if dst.Count() != 3 {
		t.Fatalf("full intensity with p=1: %d spikes", dst.Count())
	}
}

func TestPoissonEncoderDeterministic(t *testing.T) {
	a := NewPoissonEncoder(0.5, 7)
	b := NewPoissonEncoder(0.5, 7)
	da, db := bitvec.New(100), bitvec.New(100)
	in := tensor.NewVec(100)
	in.Fill(0.5)
	for i := 0; i < 5; i++ {
		a.Encode(in, da)
		b.Encode(in, db)
		for j := 0; j < 100; j++ {
			if da.Get(j) != db.Get(j) {
				t.Fatal("same seed encoders diverged")
			}
		}
	}
}

func TestPoissonEncoderValidation(t *testing.T) {
	for _, p := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("maxProb %v accepted", p)
				}
			}()
			NewPoissonEncoder(p, 1)
		}()
	}
}

type countingObserver struct {
	steps  int
	layers int
}

func (c *countingObserver) ObserveStep(t int, input *bitvec.Bits, layers []*bitvec.Bits) {
	c.steps++
	c.layers = len(layers)
}

func TestRunObserved(t *testing.T) {
	l := mustDense(t, 4, 2, 0.5, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 4}, l)
	st := NewState(net)
	obs := &countingObserver{}
	enc := NewPoissonEncoder(0.9, 3)
	in := tensor.Vec{1, 1, 1, 1}
	res := st.RunObserved(in, enc, 25, obs)
	if obs.steps != 25 || obs.layers != 1 {
		t.Fatalf("observer saw %d steps / %d layers", obs.steps, obs.layers)
	}
	if res.Steps != 25 {
		t.Fatalf("Steps = %d", res.Steps)
	}
	// Run and RunObserved(nil) agree for identical encoder state.
	st2 := NewState(net)
	r1 := st2.Run(in, NewPoissonEncoder(0.9, 3), 25)
	if r1.Prediction != res.Prediction || r1.InputSpikes != res.InputSpikes {
		t.Fatalf("Run/RunObserved diverge: %+v vs %+v", r1, res)
	}
}

// End-to-end conversion: a trained MLP converted to an SNN must retain most
// of its accuracy (the basis of Fig 14a).
func TestConvertedMLPAccuracy(t *testing.T) {
	train := dataset.Generate(dataset.Digits, 300, 21)
	test := dataset.Generate(dataset.Digits, 80, 22)
	rng := rand.New(rand.NewSource(23))
	mlp := ann.NewMLP(train.Shape.Size(), []int{40}, 10, rng)
	cfg := ann.DefaultTrainConfig()
	cfg.Epochs = 6
	mlp.Train(train, cfg)
	annAcc := mlp.Evaluate(test)

	calib, _ := train.Split(60)
	net, err := FromANN("mnist-mlp", mlp, calib)
	if err != nil {
		t.Fatal(err)
	}
	snnAcc := Evaluate(net, test, NewPoissonEncoder(0.9, 5), 120)
	if annAcc < 0.6 {
		t.Fatalf("ANN accuracy too low to test conversion: %v", annAcc)
	}
	if snnAcc < annAcc-0.15 {
		t.Fatalf("SNN accuracy %v dropped too far below ANN %v", snnAcc, annAcc)
	}
}

func TestFromANNErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	empty := &ann.Network{Input: tensor.Shape3{H: 1, W: 1, C: 4}}
	if _, err := FromANN("e", empty, nil); err == nil {
		t.Fatal("empty network accepted")
	}
	// Nil calibration set falls back to unit scales and must still convert.
	mlp := ann.NewMLP(4, []int{3}, 2, rng)
	if _, err := FromANN("m", mlp, nil); err != nil {
		t.Fatalf("nil calib rejected: %v", err)
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	l := mustDense(t, 4, 2, 0.5, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 4}, l)
	if got := Evaluate(net, &dataset.Set{}, NewPoissonEncoder(0.5, 1), 10); got != 0 {
		t.Fatalf("Evaluate empty = %v", got)
	}
}

func TestStepInputSizePanics(t *testing.T) {
	l := mustDense(t, 4, 2, 0.5, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 4}, l)
	st := NewState(net)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Step(bitvec.New(3))
}
