package snn

import (
	"fmt"
	"math/bits"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

// BatchState is the batch-major (structure-of-arrays) counterpart of State:
// one network instance classifies up to B images per layer visit. Membrane
// potentials live in a B x neurons matrix per layer (image-major rows, so
// one image's potentials stay contiguous for the 8-lane gathers) and spike
// trains in multi-image Rasters, and the blocked kernels run panel-outer /
// image-middle / step-inner, so every layer's weights are streamed once per
// group of B images instead of once per image.
//
// Images are mutually independent — image b reads only column b and its own
// raster rows — so for each image the kernels replay the exact per-neuron
// operation sequence of the single-image blocked runner (which is itself
// bit-identical to the step-major reference): results are bit-identical for
// any batch size and any grouping. See DESIGN.md §13.
type BatchState struct {
	Net *Network
	B   int

	vmem []*tensor.Mat // per layer: B x OutSize membrane potentials

	// Block scratch, sized on first use and retained across runs.
	blockK      int
	blockIn     []*bitvec.Raster   // per block step: B input spike images
	blockOut    [][]*bitvec.Raster // per layer, per block step
	flat        []int32            // concatenated per-(image, step) spike/tap lists
	offs        []int32            // segment bounds into flat (B*blockK+1, image-major)
	fires       []uint8            // per-step fired-lane bytes of one panel group
	stepmasks   []uint64           // per image: which block steps carry spikes
	stepView    []*bitvec.Bits     // per-layer view for observer replay
	idx         []int32
	counts      [][]int // per image: output spike counts
	first       [][]int // per image: first-spike timesteps
	inputSpikes []int
	results     []RunResult
}

// NewBatchState allocates batch-major simulation state for groups of up to
// b images.
func NewBatchState(net *Network, b int) *BatchState {
	if b < 1 {
		panic(fmt.Sprintf("snn: NewBatchState batch %d", b))
	}
	s := &BatchState{Net: net, B: b}
	s.vmem = make([]*tensor.Mat, len(net.Layers))
	for i, l := range net.Layers {
		s.vmem[i] = tensor.NewMat(b, l.OutSize())
	}
	s.stepmasks = make([]uint64, b)
	s.counts = make([][]int, b)
	s.first = make([][]int, b)
	for i := 0; i < b; i++ {
		s.counts[i] = make([]int, net.OutSize())
		s.first[i] = make([]int, net.OutSize())
	}
	s.inputSpikes = make([]int, b)
	s.results = make([]RunResult, b)
	return s
}

// ensureBlock sizes the raster buffers for a block of k timesteps; buffers
// are retained across runs so steady-state groups are allocation-free.
func (s *BatchState) ensureBlock(k int) {
	if s.blockK >= k {
		return
	}
	s.blockK = k
	s.blockIn = make([]*bitvec.Raster, k)
	for i := range s.blockIn {
		s.blockIn[i] = bitvec.NewRaster(s.B, s.Net.Input.Size())
	}
	s.blockOut = make([][]*bitvec.Raster, len(s.Net.Layers))
	for li, l := range s.Net.Layers {
		s.blockOut[li] = make([]*bitvec.Raster, k)
		for i := range s.blockOut[li] {
			s.blockOut[li][i] = bitvec.NewRaster(s.B, l.OutSize())
		}
	}
	s.offs = make([]int32, s.B*k+1)
	s.fires = make([]uint8, k)
	s.stepView = make([]*bitvec.Bits, len(s.Net.Layers))
}

// RunBlocked classifies a group of up to B inputs (inputs[i] encoded by
// encs[i]) over the given number of timesteps with layer-major temporal
// blocking (blockK <= 0 selects DefaultBlockSize). obs may be nil or hold
// one observer per input (individual entries may be nil); each observer sees
// its own image's step-major replay, identical to a single-image run.
//
// The returned results alias per-image State scratch, valid until the next
// run; callers that retain them must Clone.
func (s *BatchState) RunBlocked(inputs []tensor.Vec, encs []Encoder, steps, blockK int, obs []Observer) []RunResult {
	nb := len(inputs)
	if nb < 1 || nb > s.B {
		panic(fmt.Sprintf("snn: BatchState.RunBlocked %d inputs, batch is %d", nb, s.B))
	}
	if len(encs) != nb {
		panic(fmt.Sprintf("snn: BatchState.RunBlocked %d inputs, %d encoders", nb, len(encs)))
	}
	if obs != nil && len(obs) != nb {
		panic(fmt.Sprintf("snn: BatchState.RunBlocked %d inputs, %d observers", nb, len(obs)))
	}
	if blockK <= 0 {
		blockK = DefaultBlockSize
	}
	if blockK > steps && steps > 0 {
		blockK = steps
	}
	s.ensureBlock(blockK)
	for _, vm := range s.vmem {
		vm.Data.Fill(0)
	}
	for b := 0; b < nb; b++ {
		counts, first := s.counts[b], s.first[b]
		for i := range counts {
			counts[i] = 0
			first[i] = -1
		}
		s.inputSpikes[b] = 0
	}
	last := len(s.Net.Layers) - 1
	for t0 := 0; t0 < steps; t0 += blockK {
		kn := blockK
		if steps-t0 < kn {
			kn = steps - t0
		}
		// Encode the block: per image, encoders are invoked once per
		// timestep in timestep order — the identical call sequence as the
		// single-image runners, so per-image spike streams are unchanged.
		for k := 0; k < kn; k++ {
			in := s.blockIn[k]
			for b := 0; b < nb; b++ {
				dst := in.Image(b)
				encs[b].Encode(inputs[b], dst)
				s.inputSpikes[b] += dst.Count()
			}
		}
		// Layer-major sweep over the whole group.
		curR := s.blockIn
		for li, l := range s.Net.Layers {
			outR := s.blockOut[li]
			for k := 0; k < kn; k++ {
				// Clear only the images this group uses; a partial group
				// leaves the tail images' stale bits untouched and unread.
				for b := 0; b < nb; b++ {
					outR[k].Image(b).Reset()
				}
			}
			s.runLayerBlock(li, l, curR, nb, kn)
			curR = outR
		}
		// Step-major replay and output decoding, per image.
		finalR := s.blockIn
		if last >= 0 {
			finalR = s.blockOut[last]
		}
		for k := 0; k < kn; k++ {
			t := t0 + k
			for b := 0; b < nb; b++ {
				if obs != nil && obs[b] != nil {
					for li := range s.stepView {
						s.stepView[li] = s.blockOut[li][k].Image(b)
					}
					obs[b].ObserveStep(t, s.blockIn[k].Image(b), s.stepView)
				}
				s.idx = finalR[k].Image(b).AppendSet(s.idx[:0])
				counts, first := s.counts[b], s.first[b]
				for _, i := range s.idx {
					counts[i]++
					if first[i] < 0 {
						first[i] = t
					}
				}
			}
		}
	}
	for b := 0; b < nb; b++ {
		counts := s.counts[b]
		best, bestN := 0, -1
		for i, c := range counts {
			if c > bestN {
				best, bestN = i, c
			}
		}
		s.results[b] = RunResult{
			Steps: steps, OutCounts: counts, Prediction: best,
			InputSpikes: s.inputSpikes[b], FirstSpike: s.first[b],
		}
	}
	return s.results[:nb]
}

// runLayerBlock advances one layer across the kn buffered timesteps of the
// block for all nb images.
func (s *BatchState) runLayerBlock(li int, l *Layer, curR []*bitvec.Raster, nb, kn int) {
	vm := s.vmem[li]
	outR := s.blockOut[li]
	switch l.Kind {
	case DenseLayer:
		// Collect the block's spike lists once, image-major: image b's step-k
		// segment is flat[offs[b*kn+k]:offs[b*kn+k+1]].
		flat := s.flat[:0]
		offs := s.offs
		offs[0] = 0
		for b := 0; b < nb; b++ {
			var sm uint64
			for k := 0; k < kn; k++ {
				start := int32(len(flat))
				flat = curR[k].Image(b).AppendSet(flat)
				if int32(len(flat)) != start {
					sm |= 1 << uint(k&63)
				}
				offs[b*kn+k+1] = int32(len(flat))
			}
			s.stepmasks[b] = sm
		}
		s.flat = flat
		s.denseBlockBatch(l, vm, outR, nb, kn)
	case ConvLayer:
		s.convBlockBatch(l, vm, curR, outR, nb, kn)
	case PoolLayer:
		s.poolBlockBatch(l, vm, curR, outR, nb, kn)
	default:
		panic("snn: unknown layer kind")
	}
}

// denseBlockBatch is denseBlock with an image loop between the panel loop
// and the step loop: one packed 8-row panel serves B images' kn steps
// before the next panel is touched.
func (s *BatchState) denseBlockBatch(l *Layer, vm *tensor.Mat, outR []*bitvec.Raster, nb, kn int) {
	w := l.W
	cols, rows := w.Cols, w.Rows
	th := l.Threshold
	decay := 1 - l.Leak
	leaky := l.Leak > 0
	hard := l.HardReset
	pan := l.panelW()
	canSkip := !leaky || th > 0 // see poolBlock on the leak/threshold-sign caveat
	useBP := !leaky && kn <= 64
	flat, offs, fires := s.flat, s.offs, s.fires[:kn]
	var acc [panelLanes]float64
	j := 0
	for ; j+panelLanes <= rows; j += panelLanes {
		panel := pan[(j/panelLanes)*cols*panelLanes : (j/panelLanes+1)*cols*panelLanes]
		for b := 0; b < nb; b++ {
			vrow := vm.Data[b*vm.Cols : (b+1)*vm.Cols]
			copy(acc[:], vrow[j:j+panelLanes])
			if useBP {
				// One blockPanel call per (panel, image); see denseBlock.
				if s.stepmasks[b] == 0 && !groupHot(&acc, th) {
					continue
				}
				fs := blockPanel(panel, flat, offs[b*kn:b*kn+kn+1], fires, &acc, th, hard)
				for ; fs != 0; fs &= fs - 1 {
					k := bits.TrailingZeros64(fs)
					outR[k].Image(b).Or8(j, fires[k])
				}
			} else {
				hot := groupHot(&acc, th)
				for k := 0; k < kn; k++ {
					list := flat[offs[b*kn+k]:offs[b*kn+k+1]]
					if leaky {
						for i := range acc {
							acc[i] *= decay
						}
					}
					if len(list) == 0 {
						// Event-driven skip — exact no-op, see denseBlock.
						if !hot && canSkip {
							continue
						}
					} else {
						accumPanel(panel, list, &acc)
					}
					var mask uint8
					mask, hot = fireScan(&acc, th, hard)
					if mask != 0 {
						outR[k].Image(b).Or8(j, mask)
					}
				}
			}
			copy(vrow[j:j+panelLanes], acc[:])
		}
	}
	for ; j < rows; j++ {
		row := w.Data[j*cols : (j+1)*cols]
		for b := 0; b < nb; b++ {
			vrow := vm.Data[b*vm.Cols : (b+1)*vm.Cols]
			p := vrow[j]
			if useBP {
				stepmask := s.stepmasks[b]
				for k := 0; k < kn; k++ {
					if p < th {
						rem := stepmask >> uint(k)
						if rem == 0 {
							break
						}
						k += bits.TrailingZeros64(rem)
					}
					for _, i := range flat[offs[b*kn+k]:offs[b*kn+k+1]] {
						p += row[i]
					}
					if p >= th {
						outR[k].Image(b).Set(j)
						p = resetPotential(p, th, hard)
					}
				}
			} else {
				for k := 0; k < kn; k++ {
					list := flat[offs[b*kn+k]:offs[b*kn+k+1]]
					if leaky {
						p *= decay
					}
					if len(list) == 0 && p < th {
						continue
					}
					for _, i := range list {
						p += row[i]
					}
					if p >= th {
						outR[k].Image(b).Set(j)
						p = resetPotential(p, th, hard)
					}
				}
			}
			vrow[j] = p
		}
	}
}

// convBlockBatch is convBlock with an image loop: per output location the
// per-(image, step) tap lists are gathered once, then each 8-channel kernel
// panel serves every image's kn steps while it is cache-hot.
func (s *BatchState) convBlockBatch(l *Layer, vm *tensor.Mat, curR, outR []*bitvec.Raster, nb, kn int) {
	g := l.Geom
	plan := l.convPlan()
	pan := l.panelW()
	w := l.W
	fanIn := w.Cols
	outC := l.Out.C
	outW := l.Out.W
	inC, inW := g.In.C, g.In.W
	th := l.Threshold
	decay := 1 - l.Leak
	leaky := l.Leak > 0
	hard := l.HardReset
	groups := outC / panelLanes
	canSkip := !leaky || th > 0 // see poolBlock on the leak/threshold-sign caveat
	useBP := !leaky && kn <= 64
	offs, fires := s.offs, s.fires[:kn]
	var acc [panelLanes]float64
	flat := s.flat
	for oy := 0; oy < l.Out.H; oy++ {
		kyLo, kyHi := plan.kyLo[oy], plan.kyHi[oy]
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			kxLo, kxHi := plan.kxLo[ox], plan.kxHi[ox]
			ix0 := ox*g.Stride - g.Pad
			rowSpan := (kxHi - kxLo) * inC
			flat = flat[:0]
			offs[0] = 0
			for b := 0; b < nb; b++ {
				var stepmask uint64
				for k := 0; k < kn; k++ {
					in := curR[k].Image(b)
					start := int32(len(flat))
					if rowSpan > 0 && rowSpan <= 64 {
						// Narrow-row fast path; see convBlock.
						for ky := kyLo; ky < kyHi; ky++ {
							rowBase := ((iy0+ky)*inW + ix0) * inC
							lo := rowBase + kxLo*inC
							off := int32(ky*g.K*inC) - int32(rowBase)
							m := in.LoadBits(lo, rowSpan)
							for m != 0 {
								flat = append(flat, int32(lo+bits.TrailingZeros64(m))+off)
								m &= m - 1
							}
						}
					} else if rowSpan > 0 {
						for ky := kyLo; ky < kyHi; ky++ {
							rowBase := ((iy0+ky)*inW + ix0) * inC
							off := int32(ky*g.K*inC) - int32(rowBase)
							lo := rowBase + kxLo*inC
							flat = in.AppendSetRange(lo, lo+rowSpan, off, flat)
						}
					}
					if int32(len(flat)) != start {
						stepmask |= 1 << uint(k&63)
					}
					offs[b*kn+k+1] = int32(len(flat))
				}
				s.stepmasks[b] = stepmask
			}
			out0 := (oy*outW + ox) * outC
			for gi := 0; gi < groups; gi++ {
				panel := pan[gi*fanIn*panelLanes : (gi+1)*fanIn*panelLanes]
				j := out0 + gi*panelLanes
				for b := 0; b < nb; b++ {
					vrow := vm.Data[b*vm.Cols : (b+1)*vm.Cols]
					copy(acc[:], vrow[j:j+panelLanes])
					if useBP {
						// One blockPanel call per (location, group, image);
						// see denseBlock.
						if s.stepmasks[b] == 0 && !groupHot(&acc, th) {
							continue
						}
						fs := blockPanel(panel, flat, offs[b*kn:b*kn+kn+1], fires, &acc, th, hard)
						for ; fs != 0; fs &= fs - 1 {
							k := bits.TrailingZeros64(fs)
							outR[k].Image(b).Or8(j, fires[k])
						}
					} else {
						hot := groupHot(&acc, th)
						for k := 0; k < kn; k++ {
							list := flat[offs[b*kn+k]:offs[b*kn+k+1]]
							if leaky {
								for i := range acc {
									acc[i] *= decay
								}
							}
							if len(list) == 0 {
								// Event-driven skip — exact no-op, see
								// denseBlock.
								if !hot && canSkip {
									continue
								}
							} else {
								accumPanel(panel, list, &acc)
							}
							var mask uint8
							mask, hot = fireScan(&acc, th, hard)
							if mask != 0 {
								outR[k].Image(b).Or8(j, mask)
							}
						}
					}
					copy(vrow[j:j+panelLanes], acc[:])
				}
			}
			for oc := groups * panelLanes; oc < outC; oc++ {
				row := w.Data[oc*fanIn : (oc+1)*fanIn]
				j := out0 + oc
				for b := 0; b < nb; b++ {
					vrow := vm.Data[b*vm.Cols : (b+1)*vm.Cols]
					p := vrow[j]
					if useBP {
						stepmask := s.stepmasks[b]
						for k := 0; k < kn; k++ {
							if p < th {
								rem := stepmask >> uint(k)
								if rem == 0 {
									break
								}
								k += bits.TrailingZeros64(rem)
							}
							for _, t := range flat[offs[b*kn+k]:offs[b*kn+k+1]] {
								p += row[t]
							}
							if p >= th {
								outR[k].Image(b).Set(j)
								p = resetPotential(p, th, hard)
							}
						}
					} else {
						for k := 0; k < kn; k++ {
							list := flat[offs[b*kn+k]:offs[b*kn+k+1]]
							if leaky {
								p *= decay
							}
							if len(list) == 0 && p < th {
								continue
							}
							for _, t := range list {
								p += row[t]
							}
							if p >= th {
								outR[k].Image(b).Set(j)
								p = resetPotential(p, th, hard)
							}
						}
					}
					vrow[j] = p
				}
			}
		}
	}
	s.flat = flat
}

// poolBlockBatch is poolBlock with an image loop per lane group.
func (s *BatchState) poolBlockBatch(l *Layer, vm *tensor.Mat, curR, outR []*bitvec.Raster, nb, kn int) {
	g := l.Geom
	c := l.Out.C
	outW := l.Out.W
	inW := g.In.W
	pw := l.PoolWeight()
	th := l.Threshold
	decay := 1 - l.Leak
	leaky := l.Leak > 0
	hard := l.HardReset
	var acc [panelLanes]float64
	var wBuf [8]uint64
	taps := g.K * g.K
	nw := (taps + 7) / 8
	wb := wBuf[:]
	if nw > len(wBuf) {
		wb = make([]uint64, nw)
	}
	canSkip := !leaky || th > 0 // see poolBlock on the leak/threshold-sign caveat
	for oy := 0; oy < l.Out.H; oy++ {
		iy0 := oy * g.Stride
		for ox := 0; ox < outW; ox++ {
			ix0 := ox * g.Stride
			out0 := (oy*outW + ox) * c
			i00 := (iy0*inW + ix0) * c
			i10 := ((iy0+1)*inW + ix0) * c
			oc := 0
			for ; oc+panelLanes <= c; oc += panelLanes {
				j := out0 + oc
				for b := 0; b < nb; b++ {
					vrow := vm.Data[b*vm.Cols : (b+1)*vm.Cols]
					copy(acc[:], vrow[j:j+panelLanes])
					hot := groupHot(&acc, th)
					if g.K == 2 {
						// 2x2 fast path with loop-invariant tap indices; see
						// poolBlock.
						t0, t1, t2, t3 := i00+oc, i00+c+oc, i10+oc, i10+c+oc
						for k := 0; k < kn; k++ {
							if leaky {
								for i := range acc {
									acc[i] *= decay
								}
							}
							in := curR[k].Image(b)
							m0, m1, m2, m3 := in.Load8(t0), in.Load8(t1), in.Load8(t2), in.Load8(t3)
							if m0|m1|m2|m3 == 0 {
								if !hot && canSkip {
									continue
								}
							} else {
								m := uint32(m0) | uint32(m1)<<8 | uint32(m2)<<16 | uint32(m3)<<24
								for m != 0 {
									acc[bits.TrailingZeros32(m)&7] += pw
									m &= m - 1
								}
							}
							var mask uint8
							mask, hot = fireScan(&acc, th, hard)
							if mask != 0 {
								outR[k].Image(b).Or8(j, mask)
							}
						}
						copy(vrow[j:j+panelLanes], acc[:])
						continue
					}
					for k := 0; k < kn; k++ {
						if leaky {
							for i := range acc {
								acc[i] *= decay
							}
						}
						in := curR[k].Image(b)
						var mor uint8
						for wi := 0; wi < nw; wi++ {
							wb[wi] = 0
						}
						ti := 0
						for ky := 0; ky < g.K; ky++ {
							rowBase := ((iy0+ky)*inW + ix0) * c
							for kx := 0; kx < g.K; kx++ {
								m := in.Load8(rowBase + kx*c + oc)
								wb[ti>>3] |= uint64(m) << uint((ti&7)*8)
								ti++
								mor |= m
							}
						}
						if mor == 0 {
							// Event-driven skip — exact no-op, see poolBlock.
							if !hot && canSkip {
								continue
							}
						} else {
							// Walk all set bits of the packed tap words; bit
							// position mod 8 is the lane. Bit-identical; see
							// poolBlock.
							for wi := 0; wi < nw; wi++ {
								m := wb[wi]
								for m != 0 {
									acc[bits.TrailingZeros64(m)&7] += pw
									m &= m - 1
								}
							}
						}
						var mask uint8
						mask, hot = fireScan(&acc, th, hard)
						if mask != 0 {
							outR[k].Image(b).Or8(j, mask)
						}
					}
					copy(vrow[j:j+panelLanes], acc[:])
				}
			}
			for ; oc < c; oc++ {
				j := out0 + oc
				for b := 0; b < nb; b++ {
					vrow := vm.Data[b*vm.Cols : (b+1)*vm.Cols]
					p := vrow[j]
					for k := 0; k < kn; k++ {
						if leaky {
							p *= decay
						}
						in := curR[k].Image(b)
						for ky := 0; ky < g.K; ky++ {
							rowBase := ((iy0+ky)*inW + ix0) * c
							for kx := 0; kx < g.K; kx++ {
								if in.Get(rowBase + kx*c + oc) {
									p += pw
								}
							}
						}
						if p >= th {
							outR[k].Image(b).Set(j)
							p = resetPotential(p, th, hard)
						}
					}
					vrow[j] = p
				}
			}
		}
	}
}
