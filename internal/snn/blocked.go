package snn

import (
	"math/bits"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

// DefaultBlockSize is the temporal block length of RunBlocked: how many
// timesteps of spike raster are buffered and pushed through one layer
// before the next layer is touched. 64 covers the paper's full evaluation
// window (T=64) in a single block while bounding the raster buffers to
// K bits per neuron (~1.8 MB for the 231k-neuron cifar-cnn benchmark).
const DefaultBlockSize = 64

// RunBlocked classifies one input with layer-major temporal blocking: the
// input spike raster of a block of K timesteps is encoded up front, then
// each layer integrates the entire block — reusing that one layer's weights
// K times while they are cache-resident — before the next layer runs. For
// the feed-forward networks this package models, layer l at timestep t
// depends only on layer l-1 at timestep t, so inverting the (timestep,
// layer) loop nest is legal and the result is bit-identical to RunObserved:
// per neuron, the same floating-point operations happen in the same order
// (leak, ascending-index spike accumulation, threshold/reset, per
// timestep), and membrane potentials carry across block boundaries through
// Vmem exactly as they carry across timesteps.
//
// Observers still see the step-major view: the per-layer rasters of each
// block are buffered and replayed through ObserveStep in timestep order, so
// the architecture simulators consume blocked runs unchanged.
func (s *State) RunBlocked(intensity tensor.Vec, enc Encoder, steps int, obs Observer) RunResult {
	return s.RunBlockedK(intensity, enc, steps, 0, obs)
}

// RunBlockedK is RunBlocked with an explicit block size (<= 0 selects
// DefaultBlockSize). Any block size yields bit-identical results; the knob
// trades raster-buffer memory (K bits per neuron) against weight reuse (each
// layer's weights are streamed steps/K times instead of steps times).
func (s *State) RunBlockedK(intensity tensor.Vec, enc Encoder, steps, blockK int, obs Observer) RunResult {
	if blockK <= 0 {
		blockK = DefaultBlockSize
	}
	if blockK > steps && steps > 0 {
		blockK = steps
	}
	s.Reset()
	s.ensureBlock(blockK)
	counts, first := s.resetResult()
	inputSpikes := 0
	last := len(s.Net.Layers) - 1
	lastKn := 0
	for t0 := 0; t0 < steps; t0 += blockK {
		kn := blockK
		if steps-t0 < kn {
			kn = steps - t0
		}
		lastKn = kn
		// Encode the block's input raster. The encoder is invoked once per
		// timestep in timestep order — the identical call sequence (and so
		// the identical spike streams) as the step-major runner.
		for k := 0; k < kn; k++ {
			enc.Encode(intensity, s.blockIn[k])
			inputSpikes += s.blockIn[k].Count()
		}
		// Layer-major sweep: each layer consumes the full block of its
		// predecessor before the next layer is touched.
		cur := s.blockIn
		for li, l := range s.Net.Layers {
			s.runLayerBlock(li, l, cur, kn)
			cur = s.blockOut[li]
		}
		// Step-major replay for observers and output decoding.
		finalR := s.blockIn
		if last >= 0 {
			finalR = s.blockOut[last]
		}
		for k := 0; k < kn; k++ {
			t := t0 + k
			if obs != nil {
				for li := range s.stepView {
					s.stepView[li] = s.blockOut[li][k]
				}
				obs.ObserveStep(t, s.blockIn[k], s.stepView)
			}
			s.idx = finalR[k].AppendSet(s.idx[:0])
			for _, i := range s.idx {
				counts[i]++
				if first[i] < 0 {
					first[i] = t
				}
			}
		}
	}
	// Leave the last-step views (InputSpikes/LayerSpikes) consistent with
	// what a step-major run of the same input would expose.
	if lastKn > 0 {
		s.input.CopyFrom(s.blockIn[lastKn-1])
		for li := range s.spikes {
			s.spikes[li].CopyFrom(s.blockOut[li][lastKn-1])
		}
	}
	return s.finishResult(steps, inputSpikes)
}

// ensureBlock sizes the raster buffers for a block of k timesteps. Buffers
// are retained across runs (and across smaller block sizes), so repeated
// blocked classification on a warm State is allocation-free.
func (s *State) ensureBlock(k int) {
	if s.blockK >= k {
		return
	}
	s.blockK = k
	s.blockIn = make([]*bitvec.Bits, k)
	for i := range s.blockIn {
		s.blockIn[i] = bitvec.New(s.Net.Input.Size())
	}
	s.blockOut = make([][]*bitvec.Bits, len(s.Net.Layers))
	for li, l := range s.Net.Layers {
		s.blockOut[li] = make([]*bitvec.Bits, k)
		for i := range s.blockOut[li] {
			s.blockOut[li][i] = bitvec.New(l.OutSize())
		}
	}
	s.blockOffs = make([]int32, k+1)
	s.blockFires = make([]uint8, k)
	s.stepView = make([]*bitvec.Bits, len(s.Net.Layers))
}

// runLayerBlock advances one layer across the kn buffered timesteps of the
// current block, reading the predecessor raster cur and writing the layer's
// raster into s.blockOut[li].
func (s *State) runLayerBlock(li int, l *Layer, cur []*bitvec.Bits, kn int) {
	v := s.Vmem[li]
	outR := s.blockOut[li]
	for k := 0; k < kn; k++ {
		outR[k].Reset()
	}
	switch l.Kind {
	case DenseLayer:
		// Dense layers flip to output-major order: collect the block's spike
		// lists once (concatenated into one flat buffer with per-step offsets),
		// then walk each output neuron's weight row across every timestep of
		// the block while the row sits in the innermost cache.
		flat := s.blockFlat[:0]
		offs := s.blockOffs
		offs[0] = 0
		for k := 0; k < kn; k++ {
			flat = cur[k].AppendSet(flat)
			offs[k+1] = int32(len(flat))
		}
		s.blockFlat = flat
		denseBlock(l, v, flat, offs[:kn+1], s.blockFires[:kn], outR)
	case ConvLayer:
		// Conv flips to output-location-major order: per receptive field the
		// block's spiking taps are collected once into the flat/offsets
		// buffers, then each 8-channel panel integrates all kn steps with its
		// accumulators in registers (blockPanel).
		s.blockFlat = convBlock(l, v, cur[:kn], outR[:kn], s.blockFlat, s.blockOffs, s.blockFires[:kn])
	case PoolLayer:
		poolBlock(l, v, cur[:kn], outR[:kn])
	default:
		panic("snn: unknown layer kind")
	}
}

// denseBlock runs one dense layer over a block of timesteps in output-major
// order. Neurons are independent, so per output neuron j it replays the
// exact step-major sequence — leak, accumulate the spiking inputs of step k
// in ascending index order (W[j][i] equals the W^T[i][j] the step-major
// kernel adds), threshold, reset — across all kn steps with W's row j held
// in cache. Outputs are processed eight at a time purely for data-level
// parallelism: the spike accumulation of one panel-step is accumPanel
// (SSE2 on amd64, pure Go elsewhere), which adds each spike's packed
// 8-lane weight line into eight independent accumulators. Each neuron's
// own operation order (the only order float rounding depends on) is
// unchanged, so results stay bit-identical to the step-major runner.
func denseBlock(l *Layer, v tensor.Vec, flat, offs []int32, fires []uint8, outR []*bitvec.Bits) {
	w := l.W
	cols := w.Cols
	th := l.Threshold
	decay := 1 - l.Leak
	leaky := l.Leak > 0
	hard := l.HardReset
	rows := w.Rows
	pan := l.panelW()
	canSkip := !leaky || th > 0 // see poolBlock on the leak/threshold-sign caveat
	kn := len(fires)
	useBP := !leaky && kn <= 64
	stepmask := stepMask(offs)
	var acc [panelLanes]float64
	j := 0
	for ; j+panelLanes <= rows; j += panelLanes {
		// One packed panel: the weights of these eight rows for input i are
		// the contiguous eight floats at panel[i*8 .. i*8+8].
		panel := pan[(j/panelLanes)*cols*panelLanes : (j/panelLanes+1)*cols*panelLanes]
		copy(acc[:], v[j:j+panelLanes])
		if useBP {
			// Fast path (no leak): a silent block with no lane at threshold
			// is an exact no-op for this group; otherwise one blockPanel
			// call integrates all kn steps with the accumulators pinned in
			// registers and returns the fired-steps bitmask to commit.
			if stepmask == 0 && !groupHot(&acc, th) {
				continue
			}
			fs := blockPanel(panel, flat, offs, fires, &acc, th, hard)
			for ; fs != 0; fs &= fs - 1 {
				k := bits.TrailingZeros64(fs)
				outR[k].Or8(j, fires[k])
			}
		} else {
			hot := groupHot(&acc, th)
			for k := 0; k < kn; k++ {
				list := flat[offs[k]:offs[k+1]]
				if leaky {
					for i := range acc {
						acc[i] *= decay
					}
				}
				if len(list) == 0 {
					// Event-driven skip: with no input spikes every lane's
					// adds are absent in the reference too, and if no lane
					// sits at or above threshold (hot) none can fire — the
					// step is an exact no-op for this group.
					if !hot && canSkip {
						continue
					}
				} else {
					accumPanel(panel, list, &acc)
				}
				var mask uint8
				mask, hot = fireScan(&acc, th, hard)
				if mask != 0 {
					outR[k].Or8(j, mask)
				}
			}
		}
		copy(v[j:j+panelLanes], acc[:])
	}
	for ; j < rows; j++ {
		row := w.Data[j*cols : (j+1)*cols]
		p := v[j]
		if useBP {
			for k := 0; k < kn; k++ {
				if p < th {
					rem := stepmask >> uint(k)
					if rem == 0 {
						break
					}
					k += bits.TrailingZeros64(rem)
				}
				for _, i := range flat[offs[k]:offs[k+1]] {
					p += row[i]
				}
				if p >= th {
					outR[k].Set(j)
					p = resetPotential(p, th, hard)
				}
			}
		} else {
			for k := 0; k < kn; k++ {
				list := flat[offs[k]:offs[k+1]]
				if leaky {
					p *= decay
				}
				if len(list) == 0 && p < th {
					continue
				}
				for _, i := range list {
					p += row[i]
				}
				if p >= th {
					outR[k].Set(j)
					p = resetPotential(p, th, hard)
				}
			}
		}
		v[j] = p
	}
}

// stepMask summarizes which block steps carry input spikes as a bitmask (bit
// k set when segment k of the offsets table is non-empty), so the scalar
// loops of the no-leak fast path can jump over silent steps in O(1). Only
// the low 64 segments are summarized — the fast path requires kn <= 64.
func stepMask(offs []int32) uint64 {
	var m uint64
	for k := 0; k+1 < len(offs) && k < 64; k++ {
		if offs[k+1] > offs[k] {
			m |= 1 << uint(k)
		}
	}
	return m
}

// fireScan applies one step's threshold/reset to an 8-lane accumulator
// group, returning the fired-lane mask and whether any lane remains at or
// above threshold (hot) after its reset.
func fireScan(acc *[panelLanes]float64, th float64, hard bool) (mask uint8, hot bool) {
	for i, p := range acc {
		if p >= th {
			mask |= 1 << uint(i)
			p = resetPotential(p, th, hard)
			acc[i] = p
			if p >= th {
				hot = true
			}
		}
	}
	return mask, hot
}

// groupHot reports whether any lane of a gathered accumulator group is at
// or above threshold — i.e. could fire on a step without input spikes.
func groupHot(acc *[panelLanes]float64, th float64) bool {
	for _, p := range acc {
		if p >= th {
			return true
		}
	}
	return false
}

// convBlock runs one conv layer over a block of timesteps in
// output-location-major order. For each output location the spiking taps of
// its receptive field are gathered once per step into kernel-index lists
// (ascending; one AppendSetRange word walk per valid kernel row), then each
// group of eight output channels replays the step sequence — leak,
// accumPanel over the shared OutC x FanIn kernel panel, threshold, reset —
// with its eight accumulators held in registers for the whole block.
//
// Bit-identity with the step-major runner: for a fixed output neuron the
// maps (ky,kx,ic) -> input index and (ky,kx,ic) -> kernel index are both
// strictly increasing over the valid (non-padding) taps, so ascending
// kernel-index lists deliver each neuron's spike adds in exactly the
// ascending-input-index order of the event-driven reference, and per-lane
// accumPanel adds are individual IEEE additions (see DESIGN.md §13).
func convBlock(l *Layer, v tensor.Vec, cur, outR []*bitvec.Bits, flat0, offs []int32, fires []uint8) []int32 {
	g := l.Geom
	plan := l.convPlan()
	pan := l.panelW()
	w := l.W
	fanIn := w.Cols
	outC := l.Out.C
	outW := l.Out.W
	inC, inW := g.In.C, g.In.W
	th := l.Threshold
	decay := 1 - l.Leak
	leaky := l.Leak > 0
	hard := l.HardReset
	groups := outC / panelLanes
	kn := len(cur)
	canSkip := !leaky || th > 0 // see poolBlock on the leak/threshold-sign caveat
	useBP := !leaky && kn <= 64
	var acc [panelLanes]float64
	flat := flat0
	for oy := 0; oy < l.Out.H; oy++ {
		kyLo, kyHi := plan.kyLo[oy], plan.kyHi[oy]
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			kxLo, kxHi := plan.kxLo[ox], plan.kxHi[ox]
			ix0 := ox*g.Stride - g.Pad
			rowSpan := (kxHi - kxLo) * inC
			var stepmask uint64
			flat = flat[:0]
			offs[0] = 0
			for k := 0; k < kn; k++ {
				in := cur[k]
				start := int32(len(flat))
				if rowSpan > 0 && rowSpan <= 64 {
					// Narrow receptive-field rows (span <= one word) load as a
					// single masked word instead of a word-walking
					// AppendSetRange call — the common case for 3x3 kernels
					// over few-channel inputs.
					for ky := kyLo; ky < kyHi; ky++ {
						rowBase := ((iy0+ky)*inW + ix0) * inC
						lo := rowBase + kxLo*inC
						// off maps input indices of this kernel row to kernel
						// indices: kIdx = inIdx - rowBase + ky*K*inC.
						off := int32(ky*g.K*inC) - int32(rowBase)
						m := in.LoadBits(lo, rowSpan)
						for m != 0 {
							flat = append(flat, int32(lo+bits.TrailingZeros64(m))+off)
							m &= m - 1
						}
					}
				} else if rowSpan > 0 {
					for ky := kyLo; ky < kyHi; ky++ {
						rowBase := ((iy0+ky)*inW + ix0) * inC
						off := int32(ky*g.K*inC) - int32(rowBase)
						lo := rowBase + kxLo*inC
						flat = in.AppendSetRange(lo, lo+rowSpan, off, flat)
					}
				}
				if int32(len(flat)) != start {
					stepmask |= 1 << uint(k&63)
				}
				offs[k+1] = int32(len(flat))
			}
			out0 := (oy*outW + ox) * outC
			for gi := 0; gi < groups; gi++ {
				panel := pan[gi*fanIn*panelLanes : (gi+1)*fanIn*panelLanes]
				j := out0 + gi*panelLanes
				copy(acc[:], v[j:j+panelLanes])
				if useBP {
					// One blockPanel call per (location, group); see denseBlock.
					if stepmask == 0 && !groupHot(&acc, th) {
						continue
					}
					fs := blockPanel(panel, flat, offs[:kn+1], fires, &acc, th, hard)
					for ; fs != 0; fs &= fs - 1 {
						k := bits.TrailingZeros64(fs)
						outR[k].Or8(j, fires[k])
					}
				} else {
					hot := groupHot(&acc, th)
					for k := 0; k < kn; k++ {
						list := flat[offs[k]:offs[k+1]]
						if leaky {
							for i := range acc {
								acc[i] *= decay
							}
						}
						if len(list) == 0 {
							// Event-driven skip (an exact no-op in the
							// reference; see denseBlock and poolBlock).
							if !hot && canSkip {
								continue
							}
						} else {
							accumPanel(panel, list, &acc)
						}
						var mask uint8
						mask, hot = fireScan(&acc, th, hard)
						if mask != 0 {
							outR[k].Or8(j, mask)
						}
					}
				}
				copy(v[j:j+panelLanes], acc[:])
			}
			for oc := groups * panelLanes; oc < outC; oc++ {
				row := w.Data[oc*fanIn : (oc+1)*fanIn]
				j := out0 + oc
				p := v[j]
				if useBP {
					for k := 0; k < kn; k++ {
						if p < th {
							rem := stepmask >> uint(k)
							if rem == 0 {
								break
							}
							k += bits.TrailingZeros64(rem)
						}
						for _, t := range flat[offs[k]:offs[k+1]] {
							p += row[t]
						}
						if p >= th {
							outR[k].Set(j)
							p = resetPotential(p, th, hard)
						}
					}
				} else {
					for k := 0; k < kn; k++ {
						list := flat[offs[k]:offs[k+1]]
						if leaky {
							p *= decay
						}
						if len(list) == 0 && p < th {
							continue
						}
						for _, t := range list {
							p += row[t]
						}
						if p >= th {
							outR[k].Set(j)
							p = resetPotential(p, th, hard)
						}
					}
				}
				v[j] = p
			}
		}
	}
	return flat
}

// poolBlock runs one average-pooling layer over a block of timesteps in
// output-location-major order. Pool windows never touch padding (Pad == 0,
// Stride == K), every tap has the same fixed weight, and channels are
// independent, so per location the kernel walks taps in (ky, kx) order —
// ascending input index per channel — and uses Load8 to test eight
// consecutive channels' spike bits per tap at once. Each set bit adds
// PoolWeight as its own scalar IEEE addition (a popcount*weight multiply
// would round differently), preserving bit-identity with the step-major
// runner.
func poolBlock(l *Layer, v tensor.Vec, cur, outR []*bitvec.Bits) {
	g := l.Geom
	c := l.Out.C
	outW := l.Out.W
	inW := g.In.W
	pw := l.PoolWeight()
	th := l.Threshold
	decay := 1 - l.Leak
	leaky := l.Leak > 0
	hard := l.HardReset
	kn := len(cur)
	var acc [panelLanes]float64
	// Per-tap mask scratch for one window, packed eight tap bytes per word so
	// lane i's set-tap count is one masked popcount per word. The stack
	// buffer covers every realistic pool (K <= 8); larger kernels spill to a
	// heap slice once.
	var wBuf [8]uint64
	taps := g.K * g.K
	nw := (taps + 7) / 8
	wb := wBuf[:]
	if nw > len(wBuf) {
		wb = make([]uint64, nw)
	}
	// The silent-step skip relies on "no lane at threshold stays below it":
	// exact when potentials are untouched, and under leak only guaranteed for
	// positive thresholds (a negative potential decays toward zero and could
	// cross a negative threshold).
	canSkip := !leaky || th > 0
	for oy := 0; oy < l.Out.H; oy++ {
		iy0 := oy * g.Stride
		for ox := 0; ox < outW; ox++ {
			ix0 := ox * g.Stride
			out0 := (oy*outW + ox) * c
			i00 := (iy0*inW + ix0) * c
			i10 := ((iy0+1)*inW + ix0) * c
			oc := 0
			for ; oc+panelLanes <= c; oc += panelLanes {
				j := out0 + oc
				copy(acc[:], v[j:j+panelLanes])
				hot := groupHot(&acc, th)
				if g.K == 2 {
					// 2x2 windows (every Fig 10 pool) read four fixed tap
					// bytes per step — the indices are loop-invariant.
					t0, t1, t2, t3 := i00+oc, i00+c+oc, i10+oc, i10+c+oc
					for k := 0; k < kn; k++ {
						if leaky {
							for i := range acc {
								acc[i] *= decay
							}
						}
						in := cur[k]
						m0, m1, m2, m3 := in.Load8(t0), in.Load8(t1), in.Load8(t2), in.Load8(t3)
						if m0|m1|m2|m3 == 0 {
							if !hot && canSkip {
								continue
							}
						} else {
							// Every set tap adds the same pw, so a lane's
							// result depends only on its set-tap count — the
							// adds' order among taps cannot change the IEEE
							// operation sequence. Walk all set bits of the
							// packed word; bit position mod 8 is the lane.
							m := uint32(m0) | uint32(m1)<<8 | uint32(m2)<<16 | uint32(m3)<<24
							for m != 0 {
								acc[bits.TrailingZeros32(m)&7] += pw
								m &= m - 1
							}
						}
						var mask uint8
						mask, hot = fireScan(&acc, th, hard)
						if mask != 0 {
							outR[k].Or8(j, mask)
						}
					}
					copy(v[j:j+panelLanes], acc[:])
					continue
				}
				for k := 0; k < kn; k++ {
					if leaky {
						for i := range acc {
							acc[i] *= decay
						}
					}
					in := cur[k]
					// Gather the window's eight-channel tap masks first; a
					// silent window with no lane at threshold is an exact
					// no-op step (decay, if any, already applied).
					var mor uint8
					for wi := 0; wi < nw; wi++ {
						wb[wi] = 0
					}
					ti := 0
					for ky := 0; ky < g.K; ky++ {
						rowBase := ((iy0+ky)*inW + ix0) * c
						for kx := 0; kx < g.K; kx++ {
							m := in.Load8(rowBase + kx*c + oc)
							wb[ti>>3] |= uint64(m) << uint((ti&7)*8)
							ti++
							mor |= m
						}
					}
					if mor == 0 {
						if !hot && canSkip {
							continue
						}
					} else {
						// Packed-word bit walk; see the 2x2 path above on why
						// tap order cannot matter.
						for wi := 0; wi < nw; wi++ {
							m := wb[wi]
							for m != 0 {
								acc[bits.TrailingZeros64(m)&7] += pw
								m &= m - 1
							}
						}
					}
					var mask uint8
					mask, hot = fireScan(&acc, th, hard)
					if mask != 0 {
						outR[k].Or8(j, mask)
					}
				}
				copy(v[j:j+panelLanes], acc[:])
			}
			for ; oc < c; oc++ {
				j := out0 + oc
				p := v[j]
				for k := 0; k < kn; k++ {
					if leaky {
						p *= decay
					}
					in := cur[k]
					for ky := 0; ky < g.K; ky++ {
						rowBase := ((iy0+ky)*inW + ix0) * c
						for kx := 0; kx < g.K; kx++ {
							if in.Get(rowBase + kx*c + oc) {
								p += pw
							}
						}
					}
					if p >= th {
						outR[k].Set(j)
						p = resetPotential(p, th, hard)
					}
				}
				v[j] = p
			}
		}
	}
}

// resetPotential applies the post-spike reset of a fired neuron.
func resetPotential(p, th float64, hard bool) float64 {
	if hard {
		return 0
	}
	return p - th
}
