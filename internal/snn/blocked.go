package snn

import (
	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

// DefaultBlockSize is the temporal block length of RunBlocked: how many
// timesteps of spike raster are buffered and pushed through one layer
// before the next layer is touched. 64 covers the paper's full evaluation
// window (T=64) in a single block while bounding the raster buffers to
// K bits per neuron (~1.8 MB for the 231k-neuron cifar-cnn benchmark).
const DefaultBlockSize = 64

// RunBlocked classifies one input with layer-major temporal blocking: the
// input spike raster of a block of K timesteps is encoded up front, then
// each layer integrates the entire block — reusing that one layer's weights
// K times while they are cache-resident — before the next layer runs. For
// the feed-forward networks this package models, layer l at timestep t
// depends only on layer l-1 at timestep t, so inverting the (timestep,
// layer) loop nest is legal and the result is bit-identical to RunObserved:
// per neuron, the same floating-point operations happen in the same order
// (leak, ascending-index spike accumulation, threshold/reset, per
// timestep), and membrane potentials carry across block boundaries through
// Vmem exactly as they carry across timesteps.
//
// Observers still see the step-major view: the per-layer rasters of each
// block are buffered and replayed through ObserveStep in timestep order, so
// the architecture simulators consume blocked runs unchanged.
func (s *State) RunBlocked(intensity tensor.Vec, enc Encoder, steps int, obs Observer) RunResult {
	return s.RunBlockedK(intensity, enc, steps, 0, obs)
}

// RunBlockedK is RunBlocked with an explicit block size (<= 0 selects
// DefaultBlockSize). Any block size yields bit-identical results; the knob
// trades raster-buffer memory (K bits per neuron) against weight reuse (each
// layer's weights are streamed steps/K times instead of steps times).
func (s *State) RunBlockedK(intensity tensor.Vec, enc Encoder, steps, blockK int, obs Observer) RunResult {
	if blockK <= 0 {
		blockK = DefaultBlockSize
	}
	if blockK > steps && steps > 0 {
		blockK = steps
	}
	s.Reset()
	s.ensureBlock(blockK)
	counts, first := s.resetResult()
	inputSpikes := 0
	last := len(s.Net.Layers) - 1
	lastKn := 0
	for t0 := 0; t0 < steps; t0 += blockK {
		kn := blockK
		if steps-t0 < kn {
			kn = steps - t0
		}
		lastKn = kn
		// Encode the block's input raster. The encoder is invoked once per
		// timestep in timestep order — the identical call sequence (and so
		// the identical spike streams) as the step-major runner.
		for k := 0; k < kn; k++ {
			enc.Encode(intensity, s.blockIn[k])
			inputSpikes += s.blockIn[k].Count()
		}
		// Layer-major sweep: each layer consumes the full block of its
		// predecessor before the next layer is touched.
		cur := s.blockIn
		for li, l := range s.Net.Layers {
			s.runLayerBlock(li, l, cur, kn)
			cur = s.blockOut[li]
		}
		// Step-major replay for observers and output decoding.
		finalR := s.blockIn
		if last >= 0 {
			finalR = s.blockOut[last]
		}
		for k := 0; k < kn; k++ {
			t := t0 + k
			if obs != nil {
				for li := range s.stepView {
					s.stepView[li] = s.blockOut[li][k]
				}
				obs.ObserveStep(t, s.blockIn[k], s.stepView)
			}
			s.idx = finalR[k].AppendSet(s.idx[:0])
			for _, i := range s.idx {
				counts[i]++
				if first[i] < 0 {
					first[i] = t
				}
			}
		}
	}
	// Leave the last-step views (InputSpikes/LayerSpikes) consistent with
	// what a step-major run of the same input would expose.
	if lastKn > 0 {
		s.input.CopyFrom(s.blockIn[lastKn-1])
		for li := range s.spikes {
			s.spikes[li].CopyFrom(s.blockOut[li][lastKn-1])
		}
	}
	return s.finishResult(steps, inputSpikes)
}

// ensureBlock sizes the raster buffers for a block of k timesteps. Buffers
// are retained across runs (and across smaller block sizes), so repeated
// blocked classification on a warm State is allocation-free.
func (s *State) ensureBlock(k int) {
	if s.blockK >= k {
		return
	}
	s.blockK = k
	s.blockIn = make([]*bitvec.Bits, k)
	for i := range s.blockIn {
		s.blockIn[i] = bitvec.New(s.Net.Input.Size())
	}
	s.blockOut = make([][]*bitvec.Bits, len(s.Net.Layers))
	for li, l := range s.Net.Layers {
		s.blockOut[li] = make([]*bitvec.Bits, k)
		for i := range s.blockOut[li] {
			s.blockOut[li][i] = bitvec.New(l.OutSize())
		}
	}
	s.blockIdx = make([][]int32, k)
	for i := range s.blockIdx {
		s.blockIdx[i] = []int32{}
	}
	s.stepView = make([]*bitvec.Bits, len(s.Net.Layers))
}

// runLayerBlock advances one layer across the kn buffered timesteps of the
// current block, reading the predecessor raster cur and writing the layer's
// raster into s.blockOut[li].
func (s *State) runLayerBlock(li int, l *Layer, cur []*bitvec.Bits, kn int) {
	v := s.Vmem[li]
	outR := s.blockOut[li]
	for k := 0; k < kn; k++ {
		outR[k].Reset()
	}
	switch l.Kind {
	case DenseLayer:
		// Dense layers flip to output-major order: collect the block's spike
		// lists once, then walk each output neuron's weight row across every
		// timestep of the block while the row sits in the innermost cache.
		for k := 0; k < kn; k++ {
			s.blockIdx[k] = cur[k].AppendSet(s.blockIdx[k][:0])
		}
		denseBlock(l, v, s.blockIdx[:kn], outR)
	case ConvLayer, PoolLayer:
		// Conv/pool stay input-major per step (output-major would forfeit
		// the event-driven skip of silent inputs), but the layer-major sweep
		// keeps this one layer's CSR adjacency hot for the whole block.
		for k := 0; k < kn; k++ {
			if l.Leak > 0 {
				v.Scale(1 - l.Leak)
			}
			s.idx = integrate(l, cur[k], v, s.idx[:0])
			fire(l, v, outR[k])
		}
	default:
		panic("snn: unknown layer kind")
	}
}

// denseBlock runs one dense layer over a block of timesteps in output-major
// order. Neurons are independent, so per output neuron j it replays the
// exact step-major sequence — leak, accumulate the spiking inputs of step k
// in ascending index order (W[j][i] equals the W^T[i][j] the step-major
// kernel adds), threshold, reset — across all kn steps with W's row j held
// in cache. Outputs are processed eight at a time purely for data-level
// parallelism: the spike accumulation of one panel-step is accumPanel
// (SSE2 on amd64, pure Go elsewhere), which adds each spike's packed
// 8-lane weight line into eight independent accumulators. Each neuron's
// own operation order (the only order float rounding depends on) is
// unchanged, so results stay bit-identical to the step-major runner.
func denseBlock(l *Layer, v tensor.Vec, lists [][]int32, outR []*bitvec.Bits) {
	w := l.W
	cols := w.Cols
	th := l.Threshold
	decay := 1 - l.Leak
	leaky := l.Leak > 0
	hard := l.HardReset
	rows := w.Rows
	pan := l.panelW()
	var acc [panelLanes]float64
	j := 0
	for ; j+panelLanes <= rows; j += panelLanes {
		// One packed panel: the weights of these eight rows for input i are
		// the contiguous eight floats at panel[i*8 .. i*8+8].
		panel := pan[(j/panelLanes)*cols*panelLanes : (j/panelLanes+1)*cols*panelLanes]
		copy(acc[:], v[j:j+panelLanes])
		for k, list := range lists {
			if leaky {
				for i := range acc {
					acc[i] *= decay
				}
			}
			accumPanel(panel, list, &acc)
			out := outR[k]
			for i, p := range acc {
				if p >= th {
					out.Set(j + i)
					acc[i] = resetPotential(p, th, hard)
				}
			}
		}
		copy(v[j:j+panelLanes], acc[:])
	}
	for ; j < rows; j++ {
		row := w.Data[j*cols : (j+1)*cols]
		p := v[j]
		for k, list := range lists {
			if leaky {
				p *= decay
			}
			for _, i := range list {
				p += row[i]
			}
			if p >= th {
				outR[k].Set(j)
				p = resetPotential(p, th, hard)
			}
		}
		v[j] = p
	}
}

// resetPotential applies the post-spike reset of a fired neuron.
func resetPotential(p, th float64, hard bool) float64 {
	if hard {
		return 0
	}
	return p - th
}
