package snn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resparc/internal/tensor"
)

func TestDenseWeightAccessor(t *testing.T) {
	w := tensor.NewMat(3, 4)
	w.Set(2, 1, 0.7)
	l, err := NewDense("d", 4, 3, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := l.Weight(2, 1)
	if !ok || got != 0.7 {
		t.Fatalf("Weight(2,1) = %v %v", got, ok)
	}
	if _, ok := l.Weight(3, 0); ok {
		t.Fatal("out of range accepted")
	}
	if _, ok := l.Weight(0, 4); ok {
		t.Fatal("in out of range accepted")
	}
	if _, ok := l.Weight(-1, 0); ok {
		t.Fatal("negative accepted")
	}
}

// The accessor must agree with the tap walker for conv and pool layers.
func TestWeightMatchesTaps(t *testing.T) {
	f := func(seed int64, pool bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var l *Layer
		var err error
		if pool {
			in := tensor.Shape3{H: 4 + 2*rng.Intn(3), W: 4 + 2*rng.Intn(3), C: 1 + rng.Intn(3)}
			l, err = NewPool("p", in, 2, 0.499)
		} else {
			geom := tensor.ConvGeom{
				In:     tensor.Shape3{H: 4 + rng.Intn(4), W: 4 + rng.Intn(4), C: 1 + rng.Intn(2)},
				K:      1 + rng.Intn(3),
				Stride: 1 + rng.Intn(2),
				Pad:    rng.Intn(2),
				OutC:   1 + rng.Intn(3),
			}
			if _, oerr := geom.OutShape(); oerr != nil {
				return true
			}
			w := tensor.NewMat(geom.OutC, geom.FanIn())
			for i := range w.Data {
				w.Data[i] = rng.NormFloat64()
			}
			l, err = NewConv("c", geom, w, 1)
		}
		if err != nil {
			return false
		}
		// Every walker tap must be reported by Weight with the same value.
		okAll := true
		taps := map[[2]int]float64{}
		_ = l.Geom.ForEachTap(func(outIdx, inIdx, kIdx int) {
			if inIdx < 0 {
				return
			}
			if l.Kind == PoolLayer {
				// Pool walker enumerates all channels; only same-channel
				// taps are real connections.
				if inIdx%l.In.C != outIdx%l.Out.C {
					return
				}
				taps[[2]int{outIdx, inIdx}] = l.PoolWeight()
				return
			}
			taps[[2]int{outIdx, inIdx}] = l.W.At(outIdx%l.Out.C, kIdx)
		})
		for k, want := range taps {
			got, ok := l.Weight(k[0], k[1])
			if !ok || got != want {
				okAll = false
			}
		}
		// A few random non-taps must be rejected.
		for i := 0; i < 20; i++ {
			o, in := rng.Intn(l.OutSize()), rng.Intn(l.InSize())
			_, isTap := taps[[2]int{o, in}]
			_, ok := l.Weight(o, in)
			if ok != isTap {
				okAll = false
			}
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
