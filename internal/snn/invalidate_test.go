// Regression suite for weight-cache coherence: a network whose weights are
// mutated in place after first use (fault injection, in-place repair) must —
// after InvalidateWeightCaches — classify bit-identically to a freshly
// constructed network holding the same weights, on the stepped, blocked and
// batch-major paths alike.
package snn_test

import (
	"testing"

	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// mutateWeights applies a deterministic in-place perturbation to every
// weighted layer: sign-flip-and-scale a striding subset of entries, the kind
// of arbitrary rewrite a drift model or delta-rule repair performs.
func mutateWeights(net *snn.Network) {
	for li, l := range net.Layers {
		if l.W == nil {
			continue
		}
		for j := range l.W.Data {
			if (j+li)%3 == 0 {
				l.W.Data[j] *= -0.7
			}
		}
	}
}

// runAll classifies the same inputs through the stepped, blocked and
// batch-major paths and returns the three result sets.
func runAll(t *testing.T, net *snn.Network, inputs []tensor.Vec, steps int) [3][]snn.RunResult {
	t.Helper()
	enc := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 99).ForkSeed(i) }
	var out [3][]snn.RunResult
	for i, opt := range []snn.Options{
		{Workers: 1, Stepped: true},
		{Workers: 1, BlockSize: 8},
		{Workers: 1, Batch: len(inputs)},
	} {
		res, err := snn.RunBatch(net, inputs, enc, steps, opt)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res
	}
	return out
}

func assertSameResults(t *testing.T, path string, got, want []snn.RunResult) {
	t.Helper()
	for i := range want {
		if got[i].Prediction != want[i].Prediction {
			t.Fatalf("%s: image %d prediction %d, want %d", path, i, got[i].Prediction, want[i].Prediction)
		}
		for c := range want[i].OutCounts {
			if got[i].OutCounts[c] != want[i].OutCounts[c] {
				t.Fatalf("%s: image %d class %d count %d, want %d",
					path, i, c, got[i].OutCounts[c], want[i].OutCounts[c])
			}
		}
		for c := range want[i].FirstSpike {
			if got[i].FirstSpike[c] != want[i].FirstSpike[c] {
				t.Fatalf("%s: image %d class %d first spike %d, want %d",
					path, i, c, got[i].FirstSpike[c], want[i].FirstSpike[c])
			}
		}
	}
}

// assertMutateThenClassify is the core regression: prime every cache with a
// first classification, mutate W in place, invalidate, and require each
// evaluation path to match a never-cached network built directly on the
// mutated weights.
func assertMutateThenClassify(t *testing.T, dirty, fresh *snn.Network) {
	t.Helper()
	inputs := make([]tensor.Vec, 4)
	for i := range inputs {
		in := make(tensor.Vec, dirty.Input.Size())
		for j := range in {
			in[j] = float64((j*13+i*7+1)%60) / 59
		}
		inputs[i] = in
	}
	const steps = 20

	// Prime the adjacency, W^T and panel caches on every path.
	runAll(t, dirty, inputs, steps)

	mutateWeights(dirty)
	dirty.InvalidateWeightCaches()
	mutateWeights(fresh) // fresh was never run: its caches are unprimed

	got := runAll(t, dirty, inputs, steps)
	want := runAll(t, fresh, inputs, steps)
	for i, path := range []string{"stepped", "blocked", "batch-major"} {
		assertSameResults(t, path, got[i], want[i])
	}
}

func TestInvalidateWeightCachesMLP(t *testing.T) {
	assertMutateThenClassify(t, mlpFixture(t, 0, false), mlpFixture(t, 0, false))
}

func TestInvalidateWeightCachesConvPool(t *testing.T) {
	assertMutateThenClassify(t, convPoolFixture(t), convPoolFixture(t))
}

// Without invalidation the stale caches must keep answering (documented
// hazard); with it, a second invalidation after a second mutation must also
// take effect — the API is reusable, not one-shot.
func TestInvalidateWeightCachesRepeatable(t *testing.T) {
	dirty := mlpFixture(t, 0, false)
	assertMutateThenClassify(t, dirty, mlpFixture(t, 0, false))
	// Second round: mutate again on top of the first mutation. The fresh
	// reference needs round 1's mutation folded in up front (each assert
	// applies one more round to both networks).
	fresh := mlpFixture(t, 0, false)
	mutateWeights(fresh)
	assertMutateThenClassify(t, dirty, fresh)
}
