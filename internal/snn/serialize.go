package snn

import (
	"encoding/gob"
	"fmt"
	"io"

	"resparc/internal/tensor"
)

// Network serialization: trained/converted SNNs round-trip through a
// stable gob-encoded container, so a network trained once (minutes) can be
// mapped and simulated many times (milliseconds). The wire format carries
// only declarative content — shapes, kinds, weights, thresholds — and is
// re-validated through the package constructors on load.

const wireVersion = 1

type wireLayer struct {
	Kind       LayerKind
	Name       string
	In, Out    tensor.Shape3
	Geom       tensor.ConvGeom
	Rows, Cols int
	Weights    []float64
	Threshold  float64
	Leak       float64
}

type wireNetwork struct {
	Version int
	Name    string
	Input   tensor.Shape3
	Layers  []wireLayer
}

// WriteNetwork serializes the network.
func WriteNetwork(w io.Writer, n *Network) error {
	wn := wireNetwork{Version: wireVersion, Name: n.Name, Input: n.Input}
	for _, l := range n.Layers {
		wl := wireLayer{
			Kind: l.Kind, Name: l.Name, In: l.In, Out: l.Out, Geom: l.Geom,
			Threshold: l.Threshold, Leak: l.Leak,
		}
		if l.W != nil {
			wl.Rows, wl.Cols = l.W.Rows, l.W.Cols
			wl.Weights = append([]float64(nil), l.W.Data...)
		}
		wn.Layers = append(wn.Layers, wl)
	}
	return gob.NewEncoder(w).Encode(wn)
}

// ReadNetwork deserializes and re-validates a network written by
// WriteNetwork.
func ReadNetwork(r io.Reader) (*Network, error) {
	var wn wireNetwork
	if err := gob.NewDecoder(r).Decode(&wn); err != nil {
		return nil, fmt.Errorf("snn: decoding network: %w", err)
	}
	if wn.Version != wireVersion {
		return nil, fmt.Errorf("snn: unsupported network format version %d", wn.Version)
	}
	layers := make([]*Layer, 0, len(wn.Layers))
	for i, wl := range wn.Layers {
		var w *tensor.Mat
		if wl.Weights != nil {
			if wl.Rows*wl.Cols != len(wl.Weights) {
				return nil, fmt.Errorf("snn: layer %d weight shape %dx%d != %d values", i, wl.Rows, wl.Cols, len(wl.Weights))
			}
			w = &tensor.Mat{Rows: wl.Rows, Cols: wl.Cols, Data: append(tensor.Vec(nil), wl.Weights...)}
		}
		var l *Layer
		var err error
		switch wl.Kind {
		case DenseLayer:
			l, err = NewDense(wl.Name, wl.In.Size(), wl.Out.Size(), w, wl.Threshold)
			if err == nil {
				l.In, l.Out = wl.In, wl.Out
			}
		case ConvLayer:
			l, err = NewConv(wl.Name, wl.Geom, w, wl.Threshold)
		case PoolLayer:
			l, err = NewPool(wl.Name, wl.In, wl.Geom.K, wl.Threshold)
		default:
			err = fmt.Errorf("unknown layer kind %v", wl.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("snn: layer %d: %w", i, err)
		}
		l.Leak = wl.Leak
		layers = append(layers, l)
	}
	return NewNetwork(wn.Name, wn.Input, layers...)
}
