//go:build amd64

package snn

// accumPanel adds, for every spiking input index in list (ascending, one
// entry per spike of one timestep), the eight packed panel weights of that
// input into the eight lane accumulators. The amd64 implementation
// (accum_amd64.s) uses baseline SSE2 packed-double adds: lane i's value
// still receives exactly the adds of the pure-Go version, in the same
// per-lane order, so results are bit-identical — ADDPD is two independent
// IEEE double additions, not a reassociation.
//
// The caller guarantees list entries index within panel (panel holds
// len(panel)/panelLanes input lines) and len(panel) >= panelLanes.
//
//go:noescape
func accumPanel(panel []float64, list []int32, acc *[panelLanes]float64)

// blockPanel integrates one packed 8-lane panel across a whole temporal
// block (no leak): step k adds the panel lines of flat[offs[k]:offs[k+1]]
// into the eight lane accumulators, then applies threshold and reset, with
// the accumulators held in SSE2 registers for the entire block. fires[k]
// receives step k's fired-lane byte and the result has bit k set when
// fires[k] != 0 (len(fires) <= 64). Per lane the operation sequence — adds
// in list order, compare against th, subtract-th or clear-to-zero reset —
// is exactly the scalar reference's, so results are bit-identical (see
// accum_amd64.s on the packed compare's NaN behavior and the branchless
// masked reset).
//
// The caller guarantees offs has len(fires)+1 entries, ascending, indexing
// within flat, and that flat entries index within panel.
//
//go:noescape
func blockPanel(panel []float64, flat []int32, offs []int32, fires []uint8, acc *[panelLanes]float64, th float64, hard bool) uint64
