//go:build amd64

package snn

// accumPanel adds, for every spiking input index in list (ascending, one
// entry per spike of one timestep), the eight packed panel weights of that
// input into the eight lane accumulators. The amd64 implementation
// (accum_amd64.s) uses baseline SSE2 packed-double adds: lane i's value
// still receives exactly the adds of the pure-Go version, in the same
// per-lane order, so results are bit-identical — ADDPD is two independent
// IEEE double additions, not a reassociation.
//
// The caller guarantees list entries index within panel (panel holds
// len(panel)/panelLanes input lines) and len(panel) >= panelLanes.
//
//go:noescape
func accumPanel(panel []float64, list []int32, acc *[panelLanes]float64)
