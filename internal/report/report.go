// Package report renders the experiment results as aligned ASCII tables and
// labeled series — the textual equivalent of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Headers)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table as RFC-4180-ish CSV (header row first, title
// omitted) for downstream plotting.
func (t *Table) RenderCSV(w io.Writer) error {
	write := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float compactly (3 significant-ish decimals).
func F(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.3g", x)
	case x >= 10 || x <= -10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// Gain formats a ratio the way the paper annotates bars ("513x").
func Gain(x float64) string { return fmt.Sprintf("%.0fx", x) }

// Pct formats a fraction as a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Sci formats in scientific notation (energies in joules).
func Sci(x float64) string { return fmt.Sprintf("%.3e", x) }
