package report_test

import (
	"os"

	"resparc/internal/report"
)

func ExampleTable() {
	t := report.NewTable("Benchmarks", "Name", "Energy gain")
	t.Add("mnist-mlp", report.Gain(343))
	t.Add("mnist-cnn", report.Gain(8.4))
	t.Render(os.Stdout)
	// Output:
	// Benchmarks
	// | Name      | Energy gain |
	// | --------- | ----------- |
	// | mnist-mlp | 343x        |
	// | mnist-cnn | 8x          |
}
