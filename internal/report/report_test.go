package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "A", "LongHeader")
	tb.Add("x", "1")
	tb.Add("longer-cell") // short row padded
	s := tb.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Fatalf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), s)
	}
	// All table lines have the same width.
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Fatalf("ragged table:\n%s", s)
		}
	}
	if !strings.Contains(s, "| x") || !strings.Contains(s, "longer-cell") {
		t.Fatalf("cells missing:\n%s", s)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "H")
	tb.Add("v")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("empty title should not emit a blank line")
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{F(0), "0"},
		{F(0.5), "0.500"},
		{F(42.1234), "42.1"},
		{F(12345), "1.23e+04"},
		{Gain(513.4), "513x"},
		{Pct(0.1234), "12.3%"},
		{Sci(1.5e-7), "1.500e-07"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored", "A", "B")
	tb.Add("x", "1,5")
	tb.Add(`say "hi"`, "2")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "A,B\nx,\"1,5\"\n\"say \"\"hi\"\"\",2\n"
	if sb.String() != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", sb.String(), want)
	}
}
