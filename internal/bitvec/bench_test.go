package bitvec

import (
	"math/rand"
	"testing"
)

func benchBits(b *testing.B, n int, density float64) *Bits {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bits := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			bits.Set(i)
		}
	}
	return bits
}

// BenchmarkForEachSet walks a 15%-dense 4096-bit spike vector — the inner
// loop of event-driven propagation.
func BenchmarkForEachSet(b *testing.B) {
	bits := benchBits(b, 4096, 0.15)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits.ForEachSet(func(j int) { sink += j })
	}
	_ = sink
}

// BenchmarkAppendSet collects the same spike vector into a reused index
// buffer — the allocation-free collector the integration kernels use in
// place of the per-bit ForEachSet closure. Compare against
// BenchmarkForEachSet for the closure overhead.
func BenchmarkAppendSet(b *testing.B) {
	bits := benchBits(b, 4096, 0.15)
	buf := make([]int32, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = bits.AppendSet(buf[:0])
	}
	_ = buf
}

// BenchmarkZeroPackets measures the zero-check scan used by the
// event-driven transfer gating.
func BenchmarkZeroPackets(b *testing.B) {
	bits := benchBits(b, 4096, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits.ZeroPackets(64)
	}
}

// BenchmarkCount measures popcount over a 4096-bit vector.
func BenchmarkCount(b *testing.B) {
	bits := benchBits(b, 4096, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits.Count()
	}
}
