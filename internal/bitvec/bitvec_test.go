package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, i := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for index %d", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestCountAnyReset(t *testing.T) {
	b := New(200)
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh vector not empty")
	}
	b.Set(5)
	b.Set(150)
	if !b.Any() || b.Count() != 2 {
		t.Fatalf("Count = %d", b.Count())
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset failed")
	}
}

func TestForEachSetOrder(t *testing.T) {
	b := New(300)
	want := []int{3, 64, 65, 127, 128, 299}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Slice()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestClone(t *testing.T) {
	b := New(70)
	b.Set(69)
	c := b.Clone()
	c.Clear(69)
	if !b.Get(69) {
		t.Fatal("Clone aliases original")
	}
}

func TestZeroPackets(t *testing.T) {
	b := New(128)
	zero, total := b.ZeroPackets(32)
	if zero != 4 || total != 4 {
		t.Fatalf("empty: zero=%d total=%d", zero, total)
	}
	b.Set(0)   // packet 0 non-zero
	b.Set(127) // packet 3 non-zero
	zero, total = b.ZeroPackets(32)
	if zero != 2 || total != 4 {
		t.Fatalf("zero=%d total=%d", zero, total)
	}
}

func TestZeroPacketsPartialTail(t *testing.T) {
	b := New(100) // packets of 32: 3 full + 1 partial (4 bits)
	zero, total := b.ZeroPackets(32)
	if total != 4 || zero != 4 {
		t.Fatalf("zero=%d total=%d", zero, total)
	}
	b.Set(99)
	zero, _ = b.ZeroPackets(32)
	if zero != 3 {
		t.Fatalf("tail packet should be non-zero: zero=%d", zero)
	}
}

func TestZeroPacketsWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(8).ZeroPackets(0)
}

func TestDensity(t *testing.T) {
	b := New(100)
	for i := 0; i < 25; i++ {
		b.Set(i)
	}
	if b.Density() != 0.25 {
		t.Fatalf("Density = %v", b.Density())
	}
	if New(0).Density() != 0 {
		t.Fatal("empty Density should be 0")
	}
}

// Property: Count equals the number of indices visited by ForEachSet, and
// ZeroPackets is consistent with per-bit scanning for any width.
func TestBitsProperties(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		w := int(width%70) + 1
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		b := New(n)
		ref := make([]bool, n)
		for i := 0; i < n/3; i++ {
			idx := rng.Intn(n)
			b.Set(idx)
			ref[idx] = true
		}
		// Count matches reference.
		cnt := 0
		for _, v := range ref {
			if v {
				cnt++
			}
		}
		if b.Count() != cnt {
			return false
		}
		visited := 0
		ok := true
		b.ForEachSet(func(i int) {
			visited++
			if !ref[i] {
				ok = false
			}
		})
		if !ok || visited != cnt {
			return false
		}
		// ZeroPackets matches naive computation.
		wantZero, wantTotal := 0, 0
		for start := 0; start < n; start += w {
			end := start + w
			if end > n {
				end = n
			}
			wantTotal++
			allZero := true
			for i := start; i < end; i++ {
				if ref[i] {
					allZero = false
				}
			}
			if allZero {
				wantZero++
			}
		}
		gotZero, gotTotal := b.ZeroPackets(w)
		return gotZero == wantZero && gotTotal == wantTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendSetMatchesForEachSet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 63, 64, 65, 300, 4096} {
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.2 {
				b.Set(i)
			}
		}
		var want []int32
		b.ForEachSet(func(i int) { want = append(want, int32(i)) })
		got := b.AppendSet(nil)
		if len(got) != len(want) {
			t.Fatalf("n=%d: AppendSet %d indices, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: index %d: got %d, want %d", n, i, got[i], want[i])
			}
		}
		// Appending extends rather than overwrites.
		pre := []int32{-7}
		ext := b.AppendSet(pre)
		if ext[0] != -7 || len(ext) != 1+len(want) {
			t.Fatalf("n=%d: AppendSet did not extend the given buffer", n)
		}
	}
}

func TestAppendSetReuseIsAllocationFree(t *testing.T) {
	b := New(2048)
	for i := 0; i < 2048; i += 3 {
		b.Set(i)
	}
	buf := make([]int32, 0, 2048)
	allocs := testing.AllocsPerRun(100, func() {
		buf = b.AppendSet(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendSet into a sized buffer allocates %.1f times per run", allocs)
	}
}

func TestCopyFrom(t *testing.T) {
	src := New(130)
	src.Set(0)
	src.Set(64)
	src.Set(129)
	dst := New(130)
	dst.Set(5)
	dst.CopyFrom(src)
	if got, want := dst.Slice(), src.Slice(); len(got) != len(want) {
		t.Fatalf("CopyFrom: got %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("CopyFrom: got %v, want %v", got, want)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom length mismatch did not panic")
		}
	}()
	dst.CopyFrom(New(64))
}
