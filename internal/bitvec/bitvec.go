// Package bitvec provides a compact bit vector used for spike trains: one
// bit per neuron per timestep. Spike-based (0/1) information transfer is the
// defining property of SNN computation (paper §2.1), and the zero-run
// statistics of these vectors drive the event-driven energy optimizations of
// §3.2 and Fig 13.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Bits is a fixed-length bit vector.
type Bits struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector of length n.
func New(n int) *Bits {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bits) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bits) Set(i int) {
	b.check(i)
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear sets bit i to 0.
func (b *Bits) Clear(i int) {
	b.check(i)
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether bit i is set.
func (b *Bits) Get(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

func (b *Bits) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, b.n))
	}
}

// Reset clears every bit.
func (b *Bits) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits (the spike count).
func (b *Bits) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bits) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a copy of b.
func (b *Bits) Clone() *Bits {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// ForEachSet calls fn(i) for every set bit in ascending order. This is the
// hot path of the event-driven SNN simulator, so it walks words and uses
// trailing-zero counts rather than testing every bit.
func (b *Bits) ForEachSet(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// AppendSet appends the set-bit indices to buf in ascending order and
// returns the extended slice. Callers on the simulation hot path pass a
// reused buffer (buf[:0]) so collecting a spike list is allocation-free once
// the buffer has grown to the high-water mark; unlike ForEachSet there is no
// per-bit closure call, which makes the subsequent weight-gather loops
// directly indexable.
func (b *Bits) AppendSet(buf []int32) []int32 {
	for wi, w := range b.words {
		base := int32(wi << 6)
		for w != 0 {
			buf = append(buf, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return buf
}

// CopyFrom overwrites b with the contents of src. Lengths must match.
func (b *Bits) CopyFrom(src *Bits) {
	if b.n != src.n {
		panic(fmt.Sprintf("bitvec: CopyFrom length mismatch %d vs %d", b.n, src.n))
	}
	copy(b.words, src.words)
}

// Slice returns the set-bit indices as a slice (test convenience).
func (b *Bits) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEachSet(func(i int) { out = append(out, i) })
	return out
}

// ZeroPackets returns how many aligned packets of the given bit width are
// all zero, and the total number of packets. This models the "zero-check
// logic" of §3.2: a spike packet whose bits are all zero is insignificant
// and its transfer can be suppressed. Packet widths are expected to be
// powers of two up to 64 in the hardware (a packet is at most one bus word),
// but any positive width is accepted; the final partial packet counts as a
// packet and is zero-checked over its valid bits only.
func (b *Bits) ZeroPackets(width int) (zero, total int) {
	if width <= 0 {
		panic(fmt.Sprintf("bitvec: packet width %d", width))
	}
	for start := 0; start < b.n; start += width {
		end := start + width
		if end > b.n {
			end = b.n
		}
		total++
		if b.rangeZero(start, end) {
			zero++
		}
	}
	return zero, total
}

// rangeZero reports whether bits [start, end) are all zero.
func (b *Bits) rangeZero(start, end int) bool {
	for i := start; i < end; {
		if i&63 == 0 && end-i >= 64 {
			if b.words[i>>6] != 0 {
				return false
			}
			i += 64
			continue
		}
		if b.Get(i) {
			return false
		}
		i++
	}
	return true
}

// Density returns the fraction of set bits (0 for an empty vector).
func (b *Bits) Density() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.Count()) / float64(b.n)
}
