// Package bitvec provides a compact bit vector used for spike trains: one
// bit per neuron per timestep. Spike-based (0/1) information transfer is the
// defining property of SNN computation (paper §2.1), and the zero-run
// statistics of these vectors drive the event-driven energy optimizations of
// §3.2 and Fig 13.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Bits is a fixed-length bit vector.
type Bits struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector of length n.
func New(n int) *Bits {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bits) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bits) Set(i int) {
	b.check(i)
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear sets bit i to 0.
func (b *Bits) Clear(i int) {
	b.check(i)
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether bit i is set.
func (b *Bits) Get(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// check keeps the bounds test inline-able in Set/Clear/Get (they sit on the
// simulator's per-spike hot path); the panic formatting lives in a separate
// cold function so the inliner budget stays small.
func (b *Bits) check(i int) {
	if uint(i) >= uint(b.n) {
		b.panicIndex(i)
	}
}

//go:noinline
func (b *Bits) panicIndex(i int) {
	panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, b.n))
}

// Reset clears every bit.
func (b *Bits) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits (the spike count).
func (b *Bits) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bits) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a copy of b.
func (b *Bits) Clone() *Bits {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// ForEachSet calls fn(i) for every set bit in ascending order. This is the
// hot path of the event-driven SNN simulator, so it walks words and uses
// trailing-zero counts rather than testing every bit.
func (b *Bits) ForEachSet(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// AppendSet appends the set-bit indices to buf in ascending order and
// returns the extended slice. Callers on the simulation hot path pass a
// reused buffer (buf[:0]) so collecting a spike list is allocation-free once
// the buffer has grown to the high-water mark; unlike ForEachSet there is no
// per-bit closure call, which makes the subsequent weight-gather loops
// directly indexable.
func (b *Bits) AppendSet(buf []int32) []int32 {
	for wi, w := range b.words {
		base := int32(wi << 6)
		for w != 0 {
			buf = append(buf, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return buf
}

// AppendSetRange appends off+i for every set bit i in [lo, hi), in
// ascending order, and returns the extended slice. The conv block kernel
// uses it to turn one kernel row of the receptive field (a contiguous input
// index range) into kernel-space tap indices with a single offset, one word
// walk per row instead of one Get per tap.
func (b *Bits) AppendSetRange(lo, hi int, off int32, buf []int32) []int32 {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("bitvec: AppendSetRange [%d,%d) out of range [0,%d)", lo, hi, b.n))
	}
	if lo == hi {
		return buf
	}
	first, last := lo>>6, (hi-1)>>6
	for wi := first; wi <= last; wi++ {
		w := b.words[wi]
		if wi == first {
			w &= ^uint64(0) << uint(lo&63)
		}
		if wi == last {
			if r := hi & 63; r != 0 {
				w &= (1 << uint(r)) - 1
			}
		}
		base := int32(wi<<6) + off
		for w != 0 {
			buf = append(buf, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return buf
}

// Load8 returns bits [i, i+8) as a byte (bit j of the result is bit i+j).
// The pool block kernel uses it to fetch the spike bits of eight consecutive
// channels at one tap in a single load. Hot path: the caller guarantees
// i >= 0 and i+8 <= Len(); violations panic via slice indexing.
func (b *Bits) Load8(i int) uint8 {
	w := b.words[i>>6] >> uint(i&63)
	if sh := i & 63; sh > 56 {
		w |= b.words[i>>6+1] << uint(64-sh)
	}
	return uint8(w)
}

// Or8 ORs the byte m into bits [i, i+8) (bit j of m lands on bit i+j) — the
// store counterpart of Load8. The blocked kernels assemble one fire mask per
// 8-lane group and commit it with a single call instead of one Set per
// spiking lane. Hot path: the caller guarantees i >= 0 and i+8 <= Len().
func (b *Bits) Or8(i int, m uint8) {
	sh := uint(i & 63)
	b.words[i>>6] |= uint64(m) << sh
	if sh > 56 {
		b.words[i>>6+1] |= uint64(m) >> (64 - sh)
	}
}

// LoadBits returns bits [i, i+w) as the low w bits of a uint64, for
// 1 <= w <= 64. The conv block kernel uses it to pull one kernel row of a
// narrow receptive field (w = valid-taps * channels bits) in one masked
// load instead of a word-walking AppendSetRange call. Hot path: the caller
// guarantees i >= 0 and i+w <= Len().
func (b *Bits) LoadBits(i, w int) uint64 {
	sh := uint(i & 63)
	word := b.words[i>>6] >> sh
	if int(sh)+w > 64 {
		word |= b.words[i>>6+1] << (64 - sh)
	}
	return word & (^uint64(0) >> uint(64-w))
}

// CopyFrom overwrites b with the contents of src. Lengths must match.
func (b *Bits) CopyFrom(src *Bits) {
	if b.n != src.n {
		panic(fmt.Sprintf("bitvec: CopyFrom length mismatch %d vs %d", b.n, src.n))
	}
	copy(b.words, src.words)
}

// Slice returns the set-bit indices as a slice (test convenience).
func (b *Bits) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEachSet(func(i int) { out = append(out, i) })
	return out
}

// ZeroPackets returns how many aligned packets of the given bit width are
// all zero, and the total number of packets. This models the "zero-check
// logic" of §3.2: a spike packet whose bits are all zero is insignificant
// and its transfer can be suppressed. Packet widths are expected to be
// powers of two up to 64 in the hardware (a packet is at most one bus word),
// but any positive width is accepted; the final partial packet counts as a
// packet and is zero-checked over its valid bits only.
func (b *Bits) ZeroPackets(width int) (zero, total int) {
	if width <= 0 {
		panic(fmt.Sprintf("bitvec: packet width %d", width))
	}
	for start := 0; start < b.n; start += width {
		end := start + width
		if end > b.n {
			end = b.n
		}
		total++
		if b.rangeZero(start, end) {
			zero++
		}
	}
	return zero, total
}

// rangeZero reports whether bits [start, end) are all zero.
func (b *Bits) rangeZero(start, end int) bool {
	for i := start; i < end; {
		if i&63 == 0 && end-i >= 64 {
			if b.words[i>>6] != 0 {
				return false
			}
			i += 64
			continue
		}
		if b.Get(i) {
			return false
		}
		i++
	}
	return true
}

// Density returns the fraction of set bits (0 for an empty vector).
func (b *Bits) Density() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.Count()) / float64(b.n)
}
