package bitvec

import (
	"math/rand"
	"testing"
)

// AppendSetRange must agree with a naive Get loop for arbitrary windows,
// including word-straddling and word-aligned boundaries.
func TestAppendSetRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := New(300)
	for i := 0; i < 300; i++ {
		if rng.Intn(3) == 0 {
			b.Set(i)
		}
	}
	windows := [][2]int{
		{0, 0}, {0, 1}, {0, 64}, {0, 300}, {63, 65}, {64, 128}, {5, 70},
		{127, 129}, {191, 300}, {299, 300}, {60, 60}, {130, 250},
	}
	for _, w := range windows {
		lo, hi := w[0], w[1]
		off := int32(rng.Intn(100) - 50)
		var want []int32
		for i := lo; i < hi; i++ {
			if b.Get(i) {
				want = append(want, int32(i)+off)
			}
		}
		got := b.AppendSetRange(lo, hi, off, nil)
		if len(got) != len(want) {
			t.Fatalf("[%d,%d) off=%d: got %v, want %v", lo, hi, off, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d) off=%d: got %v, want %v", lo, hi, off, got, want)
			}
		}
	}
}

func TestAppendSetRangePanics(t *testing.T) {
	b := New(100)
	for _, w := range [][2]int{{-1, 10}, {0, 101}, {20, 10}} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AppendSetRange [%d,%d) did not panic", w[0], w[1])
				}
			}()
			b.AppendSetRange(w[0], w[1], 0, nil)
		}()
	}
}

// Load8 must return the same byte a per-bit Get loop assembles, at every
// in-range offset including word-straddling ones.
func TestLoad8(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := New(200)
	for i := 0; i < 200; i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
		}
	}
	for i := 0; i+8 <= 200; i++ {
		var want uint8
		for j := 0; j < 8; j++ {
			if b.Get(i + j) {
				want |= 1 << uint(j)
			}
		}
		if got := b.Load8(i); got != want {
			t.Fatalf("Load8(%d) = %08b, want %08b", i, got, want)
		}
	}
}

// Raster views alias the shared storage: a Set through one image's view is
// visible to raster-level Reset, views never allocate, and images are
// isolated from each other.
func TestRasterViews(t *testing.T) {
	r := NewRaster(3, 130)
	if r.Images() != 3 || r.Len() != 130 {
		t.Fatalf("raster dims %dx%d", r.Images(), r.Len())
	}
	r.Image(0).Set(0)
	r.Image(1).Set(129)
	r.Image(2).Set(64)
	if r.Image(0).Count() != 1 || r.Image(1).Count() != 1 || r.Image(2).Count() != 1 {
		t.Fatal("cross-image contamination")
	}
	if !r.Image(1).Get(129) || r.Image(0).Get(129) {
		t.Fatal("view bits landed in the wrong image")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if r.Image(2) != r.Image(2) {
			t.Fatal("Image view not stable")
		}
	})
	if allocs != 0 {
		t.Fatalf("Raster.Image allocates %.1f times per call", allocs)
	}
	r.Reset()
	for i := 0; i < 3; i++ {
		if r.Image(i).Any() {
			t.Fatalf("image %d not cleared by Reset", i)
		}
	}
}

// A view must behave exactly like a standalone Bits for the kernels that
// consume it (AppendSet / AppendSetRange / Load8).
func TestRasterViewKernelCompat(t *testing.T) {
	r := NewRaster(2, 90)
	ref := New(90)
	for i := 0; i < 90; i += 7 {
		r.Image(1).Set(i)
		ref.Set(i)
	}
	v := r.Image(1)
	if got, want := v.AppendSet(nil), ref.AppendSet(nil); len(got) != len(want) {
		t.Fatalf("AppendSet: %v vs %v", got, want)
	}
	for i := 0; i+8 <= 90; i += 5 {
		if v.Load8(i) != ref.Load8(i) {
			t.Fatalf("Load8(%d) differs between view and standalone", i)
		}
	}
	got := v.AppendSetRange(10, 80, -10, nil)
	want := ref.AppendSetRange(10, 80, -10, nil)
	if len(got) != len(want) {
		t.Fatalf("AppendSetRange: %v vs %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSetRange: %v vs %v", got, want)
		}
	}
}

// Or8 must OR a byte across word boundaries exactly like eight Sets.
func TestOr8(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		a := New(200)
		b := New(200)
		i := rng.Intn(193)
		m := uint8(rng.Intn(256))
		a.Or8(i, m)
		for j := 0; j < 8; j++ {
			if m&(1<<uint(j)) != 0 {
				b.Set(i + j)
			}
		}
		for k := 0; k < 200; k++ {
			if a.Get(k) != b.Get(k) {
				t.Fatalf("Or8(%d, %08b): bit %d differs", i, m, k)
			}
		}
	}
}

// LoadBits must agree with a per-bit Get loop for every width and offset.
func TestLoadBits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := New(300)
	for i := 0; i < 300; i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
		}
	}
	for trial := 0; trial < 400; trial++ {
		w := 1 + rng.Intn(64)
		i := rng.Intn(300 - w + 1)
		var want uint64
		for j := 0; j < w; j++ {
			if b.Get(i + j) {
				want |= 1 << uint(j)
			}
		}
		if got := b.LoadBits(i, w); got != want {
			t.Fatalf("LoadBits(%d, %d) = %b, want %b", i, w, got, want)
		}
	}
}
