package bitvec_test

import (
	"fmt"

	"resparc/internal/bitvec"
)

// Zero-check gating in one picture: a sparse spike vector packs into
// packets, and all-zero packets can be suppressed before transfer (§3.2).
func ExampleBits_ZeroPackets() {
	spikes := bitvec.New(128)
	spikes.Set(3)
	spikes.Set(70)
	zero, total := spikes.ZeroPackets(32)
	fmt.Printf("%d of %d packets suppressed, %d spikes survive\n",
		zero, total, spikes.Count())
	// Output:
	// 2 of 4 packets suppressed, 2 spikes survive
}

func ExampleBits_ForEachSet() {
	b := bitvec.New(100)
	b.Set(2)
	b.Set(64)
	b.Set(99)
	b.ForEachSet(func(i int) { fmt.Println(i) })
	// Output:
	// 2
	// 64
	// 99
}
