package bitvec

import "fmt"

// Raster is a batch of same-length bit vectors packed into one backing
// array — the structure-of-arrays spike raster of the batch-major runner.
// Image i's bits occupy a fixed word stride starting at word i*Stride, and
// Image returns a *Bits view aliasing that window, so every single-image
// kernel (AppendSet, AppendSetRange, Load8, ...) consumes raster rows
// unchanged and allocation-free.
type Raster struct {
	images, n int
	stride    int // words per image
	words     []uint64
	views     []Bits
}

// NewRaster returns a zeroed raster of the given image count, each n bits.
func NewRaster(images, n int) *Raster {
	if images < 0 || n < 0 {
		panic(fmt.Sprintf("bitvec: NewRaster %d images x %d bits", images, n))
	}
	stride := (n + 63) / 64
	r := &Raster{
		images: images,
		n:      n,
		stride: stride,
		words:  make([]uint64, images*stride),
		views:  make([]Bits, images),
	}
	for i := range r.views {
		r.views[i] = Bits{n: n, words: r.words[i*stride : (i+1)*stride : (i+1)*stride]}
	}
	return r
}

// Images returns the number of images in the raster.
func (r *Raster) Images() int { return r.images }

// Len returns the bit length of each image.
func (r *Raster) Len() int { return r.n }

// Image returns the i-th image's bits as a view aliasing the raster
// storage. The view is cached at construction, so repeated calls on the hot
// path do not allocate (and the call inlines to pointer arithmetic).
func (r *Raster) Image(i int) *Bits {
	if uint(i) >= uint(r.images) {
		r.panicImage(i)
	}
	return &r.views[i]
}

//go:noinline
func (r *Raster) panicImage(i int) {
	panic(fmt.Sprintf("bitvec: Raster image %d out of range [0,%d)", i, r.images))
}

// Reset clears every image.
func (r *Raster) Reset() {
	for i := range r.words {
		r.words[i] = 0
	}
}
