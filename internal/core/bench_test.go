package core

import (
	"math/rand"
	"testing"

	"resparc/internal/device"
	"resparc/internal/mapping"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// BenchmarkClassify measures one full transaction-level classification of a
// 784-512-10 MLP (16 timesteps) on RESPARC.
func BenchmarkClassify(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w1 := tensor.NewMat(512, 784)
	w2 := tensor.NewMat(10, 512)
	for i := range w1.Data {
		w1.Data[i] = rng.NormFloat64() * 0.02
	}
	for i := range w2.Data {
		w2.Data[i] = rng.NormFloat64() * 0.02
	}
	l1, err := snn.NewDense("h", 784, 512, w1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	l2, err := snn.NewDense("o", 512, 10, w2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	net, err := snn.NewNetwork("bench", tensor.Shape3{H: 28, W: 28, C: 1}, l1, l2)
	if err != nil {
		b.Fatal(err)
	}
	mc := mapping.DefaultConfig()
	mc.Tech = device.PCM
	m, err := mapping.Map(net, mc)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Steps = 16
	chip, err := New(net, m, opt)
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.NewVec(784)
	for i := range img {
		img[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.Classify(img, snn.NewPoissonEncoder(0.8, 2))
	}
}
