package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/trace"
)

// Tracing must record one event per (step, layer), sum to the report's
// totals, and leave the classification untouched.
func TestClassifyWithTrace(t *testing.T) {
	net := smallMLP(t, 31)
	m := mapped(t, net, 16)
	intensity := tensor.NewVec(net.Input.Size())
	rng := rand.New(rand.NewSource(32))
	for i := range intensity {
		intensity[i] = rng.Float64()
	}

	plain, err := New(net, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, wantRep := plain.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, 33))

	var buf bytes.Buffer
	opt := DefaultOptions()
	opt.Trace = trace.NewWriter(&buf)
	traced, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, rep := traced.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, 33))
	if rep.TraceError != nil {
		t.Fatal(rep.TraceError)
	}
	if err := opt.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	if rep.Predicted != wantRep.Predicted || rep.Counts != wantRep.Counts {
		t.Fatal("tracing changed the simulation")
	}

	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != opt.Steps*len(net.Layers) {
		t.Fatalf("%d events, want %d", len(events), opt.Steps*len(net.Layers))
	}
	var packets, suppressed, activations, rows, bus int
	var energy float64
	for _, e := range events {
		packets += e.Packets
		suppressed += e.Suppressed
		activations += e.Activations
		rows += e.RowsDriven
		bus += e.BusWords
		energy += e.EnergyJ
	}
	if packets != rep.Counts.PacketsDelivered || suppressed != rep.Counts.PacketsSuppressed ||
		activations != rep.Counts.MCAActivations || rows != rep.Counts.RowsDriven ||
		bus != rep.Counts.BusWords {
		t.Fatalf("trace sums diverge from report: %+v", rep.Counts)
	}
	if math.Abs(energy-res.Energy) > 1e-15+1e-9*res.Energy {
		t.Fatalf("trace energy %v != report %v", energy, res.Energy)
	}
	// Summaries group per layer.
	sums := trace.Summarize(events)
	if len(sums) != len(net.Layers) {
		t.Fatalf("%d summaries", len(sums))
	}
	for _, s := range sums {
		if s.Steps != opt.Steps {
			t.Fatalf("summary steps %d", s.Steps)
		}
	}
}
