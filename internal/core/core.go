// Package core implements RESPARC itself — the paper's primary
// contribution: the reconfigurable core that pools NeuroCells on a global IO
// bus with an SRAM input memory and a global control unit (§3.1.3, Fig 3),
// and its transaction-level performance/energy simulator.
//
// The simulator composes RTL-calibrated per-event energies (internal/energy)
// over event counts extracted from the functional SNN simulation — exactly
// the paper's methodology (§4.2). It scales to the largest Fig 10 benchmark
// (231k neurons, 5.5M synapses) because it never materializes crossbar
// weights: it walks the mapping's MCA input lists against the spike vectors
// of each timestep.
//
// Its event counts (and cycle counts) are validated against the cycle-level
// NeuroCell simulator (internal/neurocell) on small networks.
package core

import (
	"fmt"
	"sync/atomic"

	"resparc/internal/bitvec"
	"resparc/internal/energy"
	"resparc/internal/mapping"
	"resparc/internal/parallel"
	"resparc/internal/perf"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/trace"
)

// Options configure one simulation.
type Options struct {
	Params energy.Params
	// EventDriven enables the zero-check gating of §3.2 (Fig 13's "w/"
	// configuration). When false, every packet and bus word transfers and
	// every mapped MCA is activated and integrated each timestep.
	EventDriven bool
	// PacketWidth is the spike-packet width in bits (64 in Fig 8; Fig 13's
	// run-length discussion motivates sweeping it).
	PacketWidth int
	// Steps is the number of SNN timesteps per classification.
	Steps int
	// Trace, when non-nil, receives one event per (timestep, layer) — see
	// internal/trace. Classification results are unaffected.
	Trace *trace.Writer
	// Stepped forces the step-major functional runner instead of the
	// default blocked layer-major one (see snn.RunBlocked). Both are
	// bit-identical — predictions, spike rasters and therefore every event
	// counter match — so this is purely a performance escape hatch.
	Stepped bool
	// BlockSize overrides the temporal block length of the blocked runner
	// (<= 0 selects snn.DefaultBlockSize). Ignored when Stepped is set.
	BlockSize int
}

// DefaultOptions returns the paper's evaluation configuration.
func DefaultOptions() Options {
	return Options{Params: energy.Default45nm(), EventDriven: true, PacketWidth: 64, Steps: 64}
}

// Counters are the raw event counts of one classification.
type Counters struct {
	Cycles             int
	BusWords           int
	BusWordsSuppressed int
	PacketsDelivered   int
	PacketsSuppressed  int
	MCAActivations     int
	RowsDriven         int
	Integrations       int
	Spikes             int
	ExtTransfers       int
}

// CycleBreakdown splits the cycle count by pipeline phase — the latency
// "roofline" showing whether a benchmark is bound by global control, the
// shared bus, switch delivery, time-multiplexed integration or spike
// drain.
type CycleBreakdown struct {
	Sync, Bus, Delivery, Integrate, Drain int
}

// Total sums the phases.
func (c CycleBreakdown) Total() int {
	return c.Sync + c.Bus + c.Delivery + c.Integrate + c.Drain
}

// Bottleneck names the dominant phase.
func (c CycleBreakdown) Bottleneck() string {
	names := []string{"sync", "bus", "delivery", "integrate", "drain"}
	vals := []int{c.Sync, c.Bus, c.Delivery, c.Integrate, c.Drain}
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return names[best]
}

// Report is the full outcome of one classification on RESPARC.
type Report struct {
	Energy    perf.RESPARCEnergy
	Latency   float64 // seconds
	Counts    Counters
	Predicted int
	// LayerCycles accumulates cycles per layer stage over the run — the
	// basis of the pipelined-throughput analysis (Fig 7a: layers inside
	// NeuroCells process different timesteps concurrently).
	LayerCycles []int
	// BusCycles is the portion of Cycles spent on the shared global bus;
	// bus phases of different stages cannot overlap.
	BusCycles int
	// Breakdown splits the total cycles by pipeline phase.
	Breakdown CycleBreakdown
	// TraceError records the first trace-write failure, if tracing was
	// enabled (the simulation itself is unaffected).
	TraceError error
}

// PipelineInterval returns the steady-state initiation interval (cycles per
// timestep) when layer stages are pipelined as in Fig 7(a): bounded below
// by the slowest stage and by the serialization of the shared bus.
func (r Report) PipelineInterval(steps int) int {
	if steps <= 0 {
		return 0
	}
	max := r.BusCycles
	for _, c := range r.LayerCycles {
		if c > max {
			max = c
		}
	}
	return (max + steps - 1) / steps
}

// PipelinedThroughput returns classifications per second in pipelined
// steady state, given the NeuroCell cycle time.
func (r Report) PipelinedThroughput(steps int, cycleSeconds float64) float64 {
	ii := r.PipelineInterval(steps)
	if ii == 0 {
		return 0
	}
	return 1 / (float64(ii*steps) * cycleSeconds)
}

// Chip is a mapped network ready for simulation.
type Chip struct {
	Net *snn.Network
	Map *mapping.Mapping
	Opt Options

	sram energy.SRAM
	// ownerMPE per layer per group: the mPE holding the group's neurons.
	owner [][]int32
	// faults holds the installed fault campaign (see faults.go); atomic so
	// the serving layer can inject/clear while classifications are running.
	faults atomic.Pointer[faultState]
}

// New validates and prepares a chip for the mapped network.
func New(net *snn.Network, m *mapping.Mapping, opt Options) (*Chip, error) {
	if m.Net != net {
		return nil, fmt.Errorf("core: mapping belongs to a different network")
	}
	if opt.PacketWidth < 1 || opt.PacketWidth > 64 {
		return nil, fmt.Errorf("core: packet width %d out of [1,64]", opt.PacketWidth)
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("core: steps %d", opt.Steps)
	}
	c := &Chip{Net: net, Map: m, Opt: opt}
	// Input SRAM sized for the largest spike vector staged between layers.
	maxBits := net.Input.Size()
	for _, l := range net.Layers {
		if n := l.OutSize(); n > maxBits {
			maxBits = n
		}
	}
	bytes := maxBits / 8
	if bytes < 1024 {
		bytes = 1024
	}
	c.sram = energy.NewSRAM(bytes)
	c.owner = make([][]int32, len(m.Layers))
	for li := range m.Layers {
		lm := &m.Layers[li]
		owner := make([]int32, lm.Groups)
		for i := range owner {
			owner[i] = -1
		}
		for ai := range lm.MCAs {
			g := lm.MCAs[ai].Group
			if owner[g] < 0 {
				owner[g] = int32(lm.MCAs[ai].MPE)
			}
		}
		c.owner[li] = owner
	}
	return c, nil
}

// observer accumulates events and energy during a run.
type observer struct {
	chip        *Chip
	cnt         Counters
	e           perf.RESPARCEnergy
	layerCycles []int
	busCycles   int
	breakdown   CycleBreakdown
	scratch     [][]int32 // per-layer active-MCA count per group
	traceErr    error
}

func (o *observer) groupScratch(li, groups int) []int32 {
	if o.scratch == nil {
		o.scratch = make([][]int32, len(o.chip.Map.Layers))
	}
	if o.scratch[li] == nil {
		o.scratch[li] = make([]int32, groups)
	}
	return o.scratch[li]
}

// ObserveStep implements snn.Observer: it charges one timestep's events.
func (o *observer) ObserveStep(step int, input *bitvec.Bits, layers []*bitvec.Bits) {
	c := o.chip
	p := c.Opt.Params
	w := c.Opt.PacketWidth
	ed := c.Opt.EventDriven
	if o.layerCycles == nil {
		o.layerCycles = make([]int, len(c.Map.Layers))
	}
	cur := input
	for li := range c.Map.Layers {
		lm := &c.Map.Layers[li]
		prevCnt := o.cnt
		prevE := o.e

		// ---- Global control: event-flag synchronization (flags are read
		// eight NeuroCells per access) ----
		syncCycles := p.SyncCyclesPerNC * ((lm.NCLast - lm.NCFirst + 1 + 7) / 8)
		o.cnt.Cycles += syncCycles
		o.breakdown.Sync += syncCycles

		// ---- Global bus & SRAM (§3.1.3) ----
		if c.Map.CrossNC(li) {
			zero, total := cur.ZeroPackets(w)
			sent := total - zero
			if !ed {
				sent = total
				zero = 0
			}
			o.e.Peripherals += float64(total) * p.ZeroCheck
			// Producer write to SRAM + broadcast read: two bus transactions
			// and two SRAM accesses per surviving word (layer 0 is loaded by
			// the host, so only the broadcast read applies).
			per := 2.0
			if li == 0 {
				per = 1.0
			}
			o.e.Peripherals += float64(sent) * per * (p.BusWord + c.sram.AccessEnergy())
			o.cnt.BusWords += sent
			o.cnt.BusWordsSuppressed += zero
			// Broadcast serializes on the bus, several words per cycle.
			busCycles := (sent + p.BusWordsPerCycle - 1) / p.BusWordsPerCycle
			o.cnt.Cycles += busCycles
			o.busCycles += busCycles
			o.breakdown.Bus += busCycles
		}

		// ---- Switch network delivery + MCA activity ----
		// Spike packets are the width-bit aligned words of the producer
		// layer's spike vector, zero-checked at the sending switch (§3.2)
		// and delivered once per target mPE (the mPE's buffers fan a word
		// out to its resident MCAs). Precompute word occupancy once.
		nonzeroWord := wordOccupancy(cur, w)
		delivered := 0
		maxMux := int32(0)
		ga := o.groupScratch(li, lm.Groups)
		for i := range ga {
			ga[i] = 0
		}
		// Per-mPE delivery accounting: MCAs of one mPE are contiguous in
		// allocation order.
		// Words are deduped with a set but charged in insertion order: energy
		// is a float sum, and ranging over the map directly would make the
		// total depend on Go's randomized map order from run to run.
		curMPE := -1
		mpeSeen := map[int]bool{}
		var mpeWords []int
		flushMPE := func() {
			for _, word := range mpeWords {
				o.e.Peripherals += p.ZeroCheck
				if nonzeroWord[word] || !ed {
					delivered++
					o.e.Peripherals += p.SwitchHop + 2*p.BufferAccess
				} else {
					o.cnt.PacketsSuppressed++
				}
			}
			mpeWords = mpeWords[:0]
			for w := range mpeSeen {
				delete(mpeSeen, w)
			}
		}
		for ai := range lm.MCAs {
			mca := &lm.MCAs[ai]
			if mca.MPE != curMPE {
				flushMPE()
				curMPE = mca.MPE
			}
			rows := 0
			ins := mca.Inputs
			lastWord := -1
			for _, in := range ins {
				word := int(in) / w
				if word != lastWord {
					lastWord = word
					if !mpeSeen[word] {
						mpeSeen[word] = true
						mpeWords = append(mpeWords, word)
					}
				}
				if cur.Get(int(in)) {
					rows++
				}
			}

			active := rows > 0
			if !ed {
				active = true
			}
			if !active {
				continue
			}
			o.cnt.MCAActivations++
			o.cnt.RowsDriven += rows
			o.e.Peripherals += p.MPEControl
			// Crossbar: every cross-point on a driven row conducts; used
			// cells at programmed conductance, idle cells at the GMin pair
			// (unless the counterfactual column gating is enabled).
			usedPerRow := 0.0
			if len(ins) > 0 {
				usedPerRow = float64(mca.Taps) / float64(len(ins))
			}
			idlePerRow := float64(c.Map.Cfg.MCASize) - usedPerRow
			if p.GateIdleColumns {
				idlePerRow = 0
			}
			o.e.Crossbar += float64(rows) * (usedPerRow*p.XbarCellActive + idlePerRow*p.XbarCellActive*p.XbarIdleFrac)
			// Neuron integration of this MCA's columns.
			o.cnt.Integrations += len(mca.Outputs)
			o.e.Neuron += float64(len(mca.Outputs)) * p.NeuronIntegrate
			if int32(mca.MPE) != c.owner[li][mca.Group] {
				o.cnt.ExtTransfers++
			}
			if ga[mca.Group]++; ga[mca.Group] > maxMux {
				maxMux = ga[mca.Group]
			}
		}
		flushMPE()
		o.cnt.PacketsDelivered += delivered
		sw := lm.Switches(c.Map.Cfg)
		deliveryCycles := (delivered + sw - 1) / sw
		o.cnt.Cycles += deliveryCycles
		o.breakdown.Delivery += deliveryCycles
		integrateCycles := int(maxMux) * p.IntegrateCycles
		o.cnt.Cycles += integrateCycles
		o.breakdown.Integrate += integrateCycles

		// ---- Fire ----
		out := layers[li]
		spikes := out.Count()
		o.cnt.Spikes += spikes
		o.e.Neuron += float64(spikes) * p.NeuronSpike
		// Every spike is handled by the peripherals: oBUFF write, tBUFF
		// target lookup, packet assembly.
		o.e.Peripherals += float64(spikes) * p.SpikeHandling
		// Spikes drain through the mPEs' output ports in parallel, one per
		// mPE per cycle.
		if spikes > 0 || maxMux > 0 {
			mpes := lm.MPELast - lm.MPEFirst + 1
			drainCycles := (spikes + mpes - 1) / mpes
			if spikes == 0 {
				drainCycles++ // threshold-check cycle with no spikes
			}
			o.cnt.Cycles += drainCycles
			o.breakdown.Drain += drainCycles
		}
		o.layerCycles[li] += o.cnt.Cycles - prevCnt.Cycles

		// Optional trace: per-(step, layer) deltas.
		if c.Opt.Trace != nil {
			dc := o.cnt
			de := o.e.Total() - prevE.Total()
			err := c.Opt.Trace.Write(trace.Event{
				Step: step, Layer: li, Name: lm.Layer.Name,
				InputSpikes:  cur.Count(),
				OutputSpikes: out.Count(),
				Packets:      dc.PacketsDelivered - prevCnt.PacketsDelivered,
				Suppressed:   dc.PacketsSuppressed - prevCnt.PacketsSuppressed,
				BusWords:     dc.BusWords - prevCnt.BusWords,
				Activations:  dc.MCAActivations - prevCnt.MCAActivations,
				RowsDriven:   dc.RowsDriven - prevCnt.RowsDriven,
				EnergyJ:      de,
			})
			if err != nil && o.traceErr == nil {
				o.traceErr = err
			}
		}
		cur = out
	}
}

// Classify simulates one classification and returns the result plus the
// detailed report.
func (c *Chip) Classify(intensity tensor.Vec, enc snn.Encoder) (perf.Result, Report) {
	return c.classifyWith(snn.NewState(c.Net), intensity, enc)
}

// classifyWith runs one classification on a caller-owned state (reused
// across a worker's batch share).
func (c *Chip) classifyWith(st *snn.State, intensity tensor.Vec, enc snn.Encoder) (perf.Result, Report) {
	obs := &observer{chip: c}
	var run snn.RunResult
	if c.Opt.Stepped {
		run = st.RunObserved(intensity, enc, c.Opt.Steps, obs)
	} else {
		run = st.RunBlockedK(intensity, enc, c.Opt.Steps, c.Opt.BlockSize, obs)
	}
	lat := float64(obs.cnt.Cycles) * c.Opt.Params.NCCycle()
	rep := Report{
		Energy: obs.e, Latency: lat, Counts: obs.cnt, Predicted: run.Prediction,
		LayerCycles: obs.layerCycles, BusCycles: obs.busCycles,
		Breakdown: obs.breakdown, TraceError: obs.traceErr,
	}
	res := perf.Result{
		Arch:    "resparc",
		Network: c.Net.Name,
		Energy:  obs.e.Total(),
		Latency: lat,
		Steps:   c.Opt.Steps,
	}
	return res, rep
}

// ClassifyBatch averages energy/latency over several inputs (the paper
// reports per-classification averages). It shares one simulation state and
// one sequential encoder stream across the batch, and reduces through the
// same aggregation as ClassifyBatchParallel, so both paths return identical
// shapes: averaged energies/latency, summed counters, per-layer cycles, and
// Predicted == -1 (an aggregate has no single prediction).
func (c *Chip) ClassifyBatch(inputs []tensor.Vec, enc snn.Encoder) (perf.Result, Report, error) {
	if len(inputs) == 0 {
		return perf.Result{}, Report{}, fmt.Errorf("core: empty batch")
	}
	if err := c.Healthy(); err != nil {
		return perf.Result{}, Report{}, err
	}
	st := snn.NewState(c.Net)
	reps := make([]Report, len(inputs))
	for i, in := range inputs {
		_, reps[i] = c.classifyWith(st, in, enc)
	}
	res, avg := c.reduceReports(reps)
	return res, avg, nil
}

// reduceReports aggregates per-image reports into the batch shape shared by
// ClassifyBatch and ClassifyBatchParallel: energies and latency averaged per
// classification, event counters and cycle breakdowns summed over the batch.
func (c *Chip) reduceReports(reps []Report) (perf.Result, Report) {
	var total Report
	for _, rep := range reps {
		total.Energy.Neuron += rep.Energy.Neuron
		total.Energy.Crossbar += rep.Energy.Crossbar
		total.Energy.Peripherals += rep.Energy.Peripherals
		total.Latency += rep.Latency
		total.Counts = addCounters(total.Counts, rep.Counts)
		total.BusCycles += rep.BusCycles
		total.Breakdown = addBreakdown(total.Breakdown, rep.Breakdown)
		if total.LayerCycles == nil {
			total.LayerCycles = make([]int, len(rep.LayerCycles))
		}
		for li, cyc := range rep.LayerCycles {
			total.LayerCycles[li] += cyc
		}
	}
	n := float64(len(reps))
	avg := Report{
		Energy: perf.RESPARCEnergy{
			Neuron:      total.Energy.Neuron / n,
			Crossbar:    total.Energy.Crossbar / n,
			Peripherals: total.Energy.Peripherals / n,
		},
		Latency:     total.Latency / n,
		Counts:      total.Counts,
		BusCycles:   total.BusCycles,
		Breakdown:   total.Breakdown,
		LayerCycles: total.LayerCycles,
		Predicted:   -1,
	}
	res := perf.Result{
		Arch:    "resparc",
		Network: c.Net.Name,
		Energy:  avg.Energy.Total(),
		Latency: avg.Latency,
		Steps:   c.Opt.Steps,
	}
	return res, avg
}

// ClassifyEarlyExit classifies with time-to-first-spike decoding and stops
// simulating the moment an output neuron fires (or after Opt.Steps if none
// does) — the event-driven early-exit a spiking accelerator gets for free.
// It returns the result over the steps actually simulated, the TTFS
// prediction (-1 if silent), and the number of steps executed.
func (c *Chip) ClassifyEarlyExit(intensity tensor.Vec, enc snn.Encoder) (perf.Result, Report, int) {
	st := snn.NewState(c.Net)
	obs := &observer{chip: c}
	in := bitvec.New(c.Net.Input.Size())
	counts := make([]int, c.Net.OutSize())
	first := -1
	steps := 0
	for t := 0; t < c.Opt.Steps; t++ {
		enc.Encode(intensity, in)
		out := st.Step(in)
		obs.ObserveStep(t, st.InputSpikes(), stepSpikes(st, c))
		steps++
		fired := false
		out.ForEachSet(func(i int) {
			counts[i]++
			fired = true
		})
		if fired {
			first = bestOf(counts)
			break
		}
	}
	lat := float64(obs.cnt.Cycles) * c.Opt.Params.NCCycle()
	rep := Report{
		Energy: obs.e, Latency: lat, Counts: obs.cnt, Predicted: first,
		LayerCycles: obs.layerCycles, BusCycles: obs.busCycles,
		Breakdown: obs.breakdown,
	}
	res := perf.Result{
		Arch: "resparc", Network: c.Net.Name,
		Energy: obs.e.Total(), Latency: lat, Steps: steps,
	}
	return res, rep, steps
}

// stepSpikes adapts the state's per-layer spike vectors for the observer.
func stepSpikes(st *snn.State, c *Chip) []*bitvec.Bits {
	out := make([]*bitvec.Bits, len(c.Net.Layers))
	for i := range out {
		out[i] = st.LayerSpikes(i)
	}
	return out
}

func bestOf(counts []int) int {
	best, bestN := -1, 0
	for i, n := range counts {
		if n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// EncoderFactory builds a deterministic per-sample encoder (typically
// snn.NewPoissonEncoder(p, seed+int64(i))), making parallel batches
// reproducible regardless of scheduling.
type EncoderFactory func(sample int) snn.Encoder

// ClassifyEach classifies every input across the shared worker pool
// (internal/parallel) and returns the per-image results in input order —
// the primitive behind both ClassifyBatchParallel and the serving layer's
// per-request energy/latency reports. Each worker owns one simulation
// state, each sample gets its own encoder, and image i's outcome depends
// only on (input[i], enc(i)), so results are bit-identical for any worker
// count: ClassifyEach(..., 1) is the serial reference. workers <= 0 selects
// one worker per CPU. Tracing is not supported (the trace writer is not
// concurrency-safe).
func (c *Chip) ClassifyEach(inputs []tensor.Vec, enc EncoderFactory, workers int) ([]perf.Result, []Report, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("core: empty batch")
	}
	if c.Opt.Trace != nil {
		return nil, nil, fmt.Errorf("core: tracing is not supported with batched classification")
	}
	if err := c.Healthy(); err != nil {
		return nil, nil, err
	}
	workers = parallel.Clamp(workers, len(inputs))
	states := make([]*snn.State, workers)
	for w := range states {
		states[w] = snn.NewState(c.Net)
	}
	ress := make([]perf.Result, len(inputs))
	reps := make([]Report, len(inputs))
	parallel.ForEach(len(inputs), workers, func(worker, i int) {
		ress[i], reps[i] = c.classifyWith(states[worker], inputs[i], enc(i))
	})
	return ress, reps, nil
}

// ClassifyBatchParallel is ClassifyBatch across the shared worker pool: it
// reduces ClassifyEach's per-image reports with the same aggregation as the
// serial path, so the outcome is bit-identical for any worker count.
// workers <= 0 selects one worker per CPU.
func (c *Chip) ClassifyBatchParallel(inputs []tensor.Vec, enc EncoderFactory, workers int) (perf.Result, Report, error) {
	_, reps, err := c.ClassifyEach(inputs, enc, workers)
	if err != nil {
		return perf.Result{}, Report{}, err
	}
	res, avg := c.reduceReports(reps)
	return res, avg, nil
}

// wordOccupancy returns, per width-bit aligned word of the spike vector,
// whether it contains at least one spike.
func wordOccupancy(v *bitvec.Bits, width int) []bool {
	n := (v.Len() + width - 1) / width
	out := make([]bool, n)
	v.ForEachSet(func(i int) { out[i/width] = true })
	return out
}

func addBreakdown(a, b CycleBreakdown) CycleBreakdown {
	a.Sync += b.Sync
	a.Bus += b.Bus
	a.Delivery += b.Delivery
	a.Integrate += b.Integrate
	a.Drain += b.Drain
	return a
}

func addCounters(a, b Counters) Counters {
	a.Cycles += b.Cycles
	a.BusWords += b.BusWords
	a.BusWordsSuppressed += b.BusWordsSuppressed
	a.PacketsDelivered += b.PacketsDelivered
	a.PacketsSuppressed += b.PacketsSuppressed
	a.MCAActivations += b.MCAActivations
	a.RowsDriven += b.RowsDriven
	a.Integrations += b.Integrations
	a.Spikes += b.Spikes
	a.ExtTransfers += b.ExtTransfers
	return a
}
