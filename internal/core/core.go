// Package core implements RESPARC itself — the paper's primary
// contribution: the reconfigurable core that pools NeuroCells on a global IO
// bus with an SRAM input memory and a global control unit (§3.1.3, Fig 3),
// and its transaction-level performance/energy simulator.
//
// The simulator composes RTL-calibrated per-event energies (internal/energy)
// over event counts extracted from the functional SNN simulation — exactly
// the paper's methodology (§4.2). It scales to the largest Fig 10 benchmark
// (231k neurons, 5.5M synapses) because it never materializes crossbar
// weights: it walks the mapping's MCA input lists against the spike vectors
// of each timestep.
//
// Its event counts (and cycle counts) are validated against the cycle-level
// NeuroCell simulator (internal/neurocell) on small networks.
//
// Chip implements sim.Backend; all batch entry points route through the
// shared fan-out in internal/sim. Accounting is kept per layer (LayerCycles,
// LayerEnergies) and totals are reduced in ascending layer order, which is
// what lets internal/shard slice a chip's accounting across a multi-chip
// pipeline and still reproduce the single-chip totals bit for bit.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"resparc/internal/bitvec"
	"resparc/internal/energy"
	"resparc/internal/mapping"
	"resparc/internal/perf"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/trace"
)

// Options configure one simulation.
type Options struct {
	Params energy.Params
	// EventDriven enables the zero-check gating of §3.2 (Fig 13's "w/"
	// configuration). When false, every packet and bus word transfers and
	// every mapped MCA is activated and integrated each timestep.
	EventDriven bool
	// PacketWidth is the spike-packet width in bits (64 in Fig 8; Fig 13's
	// run-length discussion motivates sweeping it).
	PacketWidth int
	// Steps is the number of SNN timesteps per classification.
	Steps int
	// Trace, when non-nil, receives one event per (timestep, layer) — see
	// internal/trace. Classification results are unaffected.
	Trace *trace.Writer
	// Stepped forces the step-major functional runner instead of the
	// default blocked layer-major one (see snn.RunBlocked). Both are
	// bit-identical — predictions, spike rasters and therefore every event
	// counter match — so this is purely a performance escape hatch.
	Stepped bool
	// BlockSize overrides the temporal block length of the blocked runner
	// (<= 0 selects snn.DefaultBlockSize). Ignored when Stepped is set.
	BlockSize int
	// EventEngine selects the discrete-event accounting path (see event.go):
	// energies, predictions and event counters are bit-identical to the
	// stepped accounting, but its cost scales with spike count instead of
	// timesteps x mapped inputs, and Counters.Cycles/Latency come from a
	// pipelined (Fig 7a) event simulation instead of serially summing every
	// stage. Not to be confused with EventDriven, which is the paper's §3.2
	// zero-check gating (a property of the modeled hardware, not of the
	// simulator).
	EventEngine bool
}

// DefaultOptions returns the paper's evaluation configuration.
func DefaultOptions() Options {
	return Options{Params: energy.Default45nm(), EventDriven: true, PacketWidth: 64, Steps: 64}
}

// Counters are the raw event counts of one classification.
type Counters struct {
	Cycles             int
	BusWords           int
	BusWordsSuppressed int
	PacketsDelivered   int
	PacketsSuppressed  int
	MCAActivations     int
	RowsDriven         int
	Integrations       int
	Spikes             int
	ExtTransfers       int
}

// CycleBreakdown splits the cycle count by pipeline phase — the latency
// "roofline" showing whether a benchmark is bound by global control, the
// shared bus, switch delivery, time-multiplexed integration or spike
// drain.
type CycleBreakdown struct {
	Sync, Bus, Delivery, Integrate, Drain int
}

// Total sums the phases.
func (c CycleBreakdown) Total() int {
	return c.Sync + c.Bus + c.Delivery + c.Integrate + c.Drain
}

// Bottleneck names the dominant phase.
func (c CycleBreakdown) Bottleneck() string {
	names := []string{"sync", "bus", "delivery", "integrate", "drain"}
	vals := []int{c.Sync, c.Bus, c.Delivery, c.Integrate, c.Drain}
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return names[best]
}

// Report is the full outcome of one classification on RESPARC.
type Report struct {
	Energy    perf.RESPARCEnergy
	Latency   float64 // seconds
	Counts    Counters
	Predicted int
	// LayerCycles accumulates cycles per layer stage over the run — the
	// basis of the pipelined-throughput analysis (Fig 7a: layers inside
	// NeuroCells process different timesteps concurrently). For a range
	// accountant (see Accountant) the slice covers only the charged range.
	LayerCycles []int
	// LayerEnergies is the per-layer energy breakdown; Energy is its
	// layer-order sum (perf.SumRESPARC), which is what makes multi-chip
	// accounting slices recombine to the bit-identical single-chip total.
	LayerEnergies []perf.RESPARCEnergy
	// BusCycles is the portion of Cycles spent on the shared global bus;
	// bus phases of different stages cannot overlap.
	BusCycles int
	// Breakdown splits the total cycles by pipeline phase. Under the event
	// engine the phases still sum the per-stage durations (identical to the
	// stepped path), while Counts.Cycles is the smaller pipelined makespan —
	// the difference is the overlap the pipeline wins.
	Breakdown CycleBreakdown
	// LayerSpikes counts output spikes per (local) layer over the run — the
	// sparsity record behind perf.Result's occupancy stats.
	LayerSpikes []int
	// Stages holds the per-(timestep, layer) stage durations recorded by the
	// event engine (nil under stepped accounting), indexed [step][local
	// layer]. internal/shard feeds the concatenated grids of its shards to
	// one global pipeline simulation.
	Stages [][]StageDur
	// BusWait is the total cycles stages spent queued for the shared global
	// bus in the pipelined event simulation (zero under stepped accounting).
	BusWait int64
	// TraceError records the first trace-write failure, if tracing was
	// enabled (the simulation itself is unaffected).
	TraceError error
}

// PipelineInterval returns the steady-state initiation interval (cycles per
// timestep) when layer stages are pipelined as in Fig 7(a): bounded below
// by the slowest stage and by the serialization of the shared bus.
func (r Report) PipelineInterval(steps int) int {
	if steps <= 0 {
		return 0
	}
	max := r.BusCycles
	for _, c := range r.LayerCycles {
		if c > max {
			max = c
		}
	}
	return (max + steps - 1) / steps
}

// PipelinedThroughput returns classifications per second in pipelined
// steady state, given the NeuroCell cycle time.
func (r Report) PipelinedThroughput(steps int, cycleSeconds float64) float64 {
	ii := r.PipelineInterval(steps)
	if ii == 0 {
		return 0
	}
	return 1 / (float64(ii*steps) * cycleSeconds)
}

// Chip is a mapped network ready for simulation.
type Chip struct {
	Net *snn.Network
	Map *mapping.Mapping
	Opt Options

	sram energy.SRAM
	// ownerMPE per layer per group: the mPE holding the group's neurons.
	owner [][]int32
	// faults holds the installed fault campaign (see faults.go); atomic so
	// the serving layer can inject/clear while classifications are running.
	faults atomic.Pointer[faultState]
	// plans caches the event-engine layer plans (see event.go), built once
	// on first use; fault campaigns never mutate the mapping, so the cache
	// holds for the chip's lifetime.
	plansOnce sync.Once
	plans     []layerPlan
}

// New validates and prepares a chip for the mapped network.
func New(net *snn.Network, m *mapping.Mapping, opt Options) (*Chip, error) {
	if m.Net != net {
		return nil, fmt.Errorf("core: mapping belongs to a different network")
	}
	if opt.PacketWidth < 1 || opt.PacketWidth > 64 {
		return nil, fmt.Errorf("core: packet width %d out of [1,64]", opt.PacketWidth)
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("core: steps %d", opt.Steps)
	}
	c := &Chip{Net: net, Map: m, Opt: opt}
	// Input SRAM sized for the largest spike vector staged between layers.
	maxBits := net.Input.Size()
	for _, l := range net.Layers {
		if n := l.OutSize(); n > maxBits {
			maxBits = n
		}
	}
	bytes := maxBits / 8
	if bytes < 1024 {
		bytes = 1024
	}
	c.sram = energy.NewSRAM(bytes)
	c.owner = make([][]int32, len(m.Layers))
	for li := range m.Layers {
		lm := &m.Layers[li]
		owner := make([]int32, lm.Groups)
		for i := range owner {
			owner[i] = -1
		}
		for ai := range lm.MCAs {
			g := lm.MCAs[ai].Group
			if owner[g] < 0 {
				owner[g] = int32(lm.MCAs[ai].MPE)
			}
		}
		c.owner[li] = owner
	}
	return c, nil
}

var _ sim.Backend = (*Chip)(nil)

// Name implements sim.Backend.
func (c *Chip) Name() string { return "resparc" }

// Network implements sim.Backend.
func (c *Chip) Network() *snn.Network { return c.Net }

// observer accumulates events and energy for the global layer range
// [lo, hi) during a run. The full chip observes [0, len(layers)); the shard
// executor charges disjoint sub-ranges (via Accountant) whose reports merge
// back to the identical totals.
type observer struct {
	chip        *Chip
	lo, hi      int // global layer range [lo, hi)
	cnt         Counters
	layerE      []perf.RESPARCEnergy // per local layer
	layerCycles []int                // per local layer
	layerSpikes []int                // per local layer
	busCycles   int
	breakdown   CycleBreakdown
	scratch     [][]int32 // per local layer: active-MCA count per group
	traceErr    error
	// ev, when non-nil, selects the event-engine accounting path (event.go).
	ev *eventState
}

func newObserver(c *Chip, lo, hi int) observer {
	return newObserverOpt(c, lo, hi, false)
}

func newObserverOpt(c *Chip, lo, hi int, eventEngine bool) observer {
	n := hi - lo
	o := observer{
		chip: c, lo: lo, hi: hi,
		layerE:      make([]perf.RESPARCEnergy, n),
		layerCycles: make([]int, n),
		layerSpikes: make([]int, n),
		scratch:     make([][]int32, n),
	}
	if eventEngine {
		o.ev = newEventState(c, lo, hi)
	}
	return o
}

func (o *observer) groupScratch(j, groups int) []int32 {
	if o.scratch[j] == nil {
		o.scratch[j] = make([]int32, groups)
	}
	return o.scratch[j]
}

// reset clears the accumulated accounting, keeping the scratch allocations,
// so one observer can be reused across a stream of classifications.
func (o *observer) reset() {
	o.cnt = Counters{}
	for i := range o.layerE {
		o.layerE[i] = perf.RESPARCEnergy{}
	}
	for i := range o.layerCycles {
		o.layerCycles[i] = 0
	}
	for i := range o.layerSpikes {
		o.layerSpikes[i] = 0
	}
	o.busCycles = 0
	o.breakdown = CycleBreakdown{}
	o.traceErr = nil
	if o.ev != nil {
		o.ev.reset()
	}
}

// ObserveStep implements snn.Observer: it charges one timestep's events.
// layers holds the spike vectors of the observed range only (local indices);
// input is the spike vector feeding the range's first layer.
func (o *observer) ObserveStep(step int, input *bitvec.Bits, layers []*bitvec.Bits) {
	if o.ev != nil {
		o.observeEvent(step, input, layers)
		return
	}
	c := o.chip
	p := c.Opt.Params
	w := c.Opt.PacketWidth
	ed := c.Opt.EventDriven
	cur := input
	for j := 0; j < o.hi-o.lo; j++ {
		gi := o.lo + j
		lm := &c.Map.Layers[gi]
		le := &o.layerE[j]
		prevCnt := o.cnt
		prevE := *le

		// ---- Global control: event-flag synchronization (flags are read
		// eight NeuroCells per access) ----
		syncCycles := p.SyncCyclesPerNC * ((lm.NCLast - lm.NCFirst + 1 + 7) / 8)
		o.cnt.Cycles += syncCycles
		o.breakdown.Sync += syncCycles

		// ---- Global bus & SRAM (§3.1.3) ----
		if c.Map.CrossNC(gi) {
			zero, total := cur.ZeroPackets(w)
			sent := total - zero
			if !ed {
				sent = total
				zero = 0
			}
			le.Peripherals += float64(total) * p.ZeroCheck
			// Producer write to SRAM + broadcast read: two bus transactions
			// and two SRAM accesses per surviving word (layer 0 is loaded by
			// the host, so only the broadcast read applies).
			per := 2.0
			if gi == 0 {
				per = 1.0
			}
			le.Peripherals += float64(sent) * per * (p.BusWord + c.sram.AccessEnergy())
			o.cnt.BusWords += sent
			o.cnt.BusWordsSuppressed += zero
			// Broadcast serializes on the bus, several words per cycle.
			busCycles := (sent + p.BusWordsPerCycle - 1) / p.BusWordsPerCycle
			o.cnt.Cycles += busCycles
			o.busCycles += busCycles
			o.breakdown.Bus += busCycles
		}

		// ---- Switch network delivery + MCA activity ----
		// Spike packets are the width-bit aligned words of the producer
		// layer's spike vector, zero-checked at the sending switch (§3.2)
		// and delivered once per target mPE (the mPE's buffers fan a word
		// out to its resident MCAs). Precompute word occupancy once.
		nonzeroWord := wordOccupancy(cur, w)
		delivered := 0
		maxMux := int32(0)
		ga := o.groupScratch(j, lm.Groups)
		for i := range ga {
			ga[i] = 0
		}
		// Per-mPE delivery accounting: MCAs of one mPE are contiguous in
		// allocation order.
		// Words are deduped with a set but charged in insertion order: energy
		// is a float sum, and ranging over the map directly would make the
		// total depend on Go's randomized map order from run to run.
		curMPE := -1
		mpeSeen := map[int]bool{}
		var mpeWords []int
		flushMPE := func() {
			for _, word := range mpeWords {
				le.Peripherals += p.ZeroCheck
				if nonzeroWord[word] || !ed {
					delivered++
					le.Peripherals += p.SwitchHop + 2*p.BufferAccess
				} else {
					o.cnt.PacketsSuppressed++
				}
			}
			mpeWords = mpeWords[:0]
			for w := range mpeSeen {
				delete(mpeSeen, w)
			}
		}
		for ai := range lm.MCAs {
			mca := &lm.MCAs[ai]
			if mca.MPE != curMPE {
				flushMPE()
				curMPE = mca.MPE
			}
			rows := 0
			ins := mca.Inputs
			lastWord := -1
			for _, in := range ins {
				word := int(in) / w
				if word != lastWord {
					lastWord = word
					if !mpeSeen[word] {
						mpeSeen[word] = true
						mpeWords = append(mpeWords, word)
					}
				}
				if cur.Get(int(in)) {
					rows++
				}
			}

			active := rows > 0
			if !ed {
				active = true
			}
			if !active {
				continue
			}
			o.cnt.MCAActivations++
			o.cnt.RowsDriven += rows
			le.Peripherals += p.MPEControl
			// Crossbar: every cross-point on a driven row conducts; used
			// cells at programmed conductance, idle cells at the GMin pair
			// (unless the counterfactual column gating is enabled).
			usedPerRow := 0.0
			if len(ins) > 0 {
				usedPerRow = float64(mca.Taps) / float64(len(ins))
			}
			idlePerRow := float64(c.Map.LayerSize(gi)) - usedPerRow
			if p.GateIdleColumns {
				idlePerRow = 0
			}
			le.Crossbar += float64(rows) * (usedPerRow*p.XbarCellActive + idlePerRow*p.XbarCellActive*p.XbarIdleFrac)
			// Neuron integration of this MCA's columns.
			o.cnt.Integrations += len(mca.Outputs)
			le.Neuron += float64(len(mca.Outputs)) * p.NeuronIntegrate
			if int32(mca.MPE) != c.owner[gi][mca.Group] {
				o.cnt.ExtTransfers++
			}
			if ga[mca.Group]++; ga[mca.Group] > maxMux {
				maxMux = ga[mca.Group]
			}
		}
		flushMPE()
		o.cnt.PacketsDelivered += delivered
		sw := lm.Switches(c.Map.Cfg)
		deliveryCycles := (delivered + sw - 1) / sw
		o.cnt.Cycles += deliveryCycles
		o.breakdown.Delivery += deliveryCycles
		integrateCycles := int(maxMux) * p.IntegrateCycles
		o.cnt.Cycles += integrateCycles
		o.breakdown.Integrate += integrateCycles

		// ---- Fire ----
		out := layers[j]
		spikes := out.Count()
		o.cnt.Spikes += spikes
		o.layerSpikes[j] += spikes
		le.Neuron += float64(spikes) * p.NeuronSpike
		// Every spike is handled by the peripherals: oBUFF write, tBUFF
		// target lookup, packet assembly.
		le.Peripherals += float64(spikes) * p.SpikeHandling
		// Spikes drain through the mPEs' output ports in parallel, one per
		// mPE per cycle.
		if spikes > 0 || maxMux > 0 {
			mpes := lm.MPELast - lm.MPEFirst + 1
			drainCycles := (spikes + mpes - 1) / mpes
			if spikes == 0 {
				drainCycles++ // threshold-check cycle with no spikes
			}
			o.cnt.Cycles += drainCycles
			o.breakdown.Drain += drainCycles
		}
		o.layerCycles[j] += o.cnt.Cycles - prevCnt.Cycles

		// Optional trace: per-(step, layer) deltas.
		if c.Opt.Trace != nil {
			o.writeTrace(step, gi, cur, out, prevCnt, prevE)
		}
		cur = out
	}
}

// writeTrace emits one per-(step, layer) trace event from the accounting
// deltas since the snapshot; shared by the stepped and event paths.
func (o *observer) writeTrace(step, gi int, cur, out *bitvec.Bits, prevCnt Counters, prevE perf.RESPARCEnergy) {
	c := o.chip
	lm := &c.Map.Layers[gi]
	le := &o.layerE[gi-o.lo]
	dc := o.cnt
	de := le.Total() - prevE.Total()
	err := c.Opt.Trace.Write(trace.Event{
		Step: step, Layer: gi, Name: lm.Layer.Name,
		InputSpikes:  cur.Count(),
		OutputSpikes: out.Count(),
		Packets:      dc.PacketsDelivered - prevCnt.PacketsDelivered,
		Suppressed:   dc.PacketsSuppressed - prevCnt.PacketsSuppressed,
		BusWords:     dc.BusWords - prevCnt.BusWords,
		Activations:  dc.MCAActivations - prevCnt.MCAActivations,
		RowsDriven:   dc.RowsDriven - prevCnt.RowsDriven,
		EnergyJ:      de,
	})
	if err != nil && o.traceErr == nil {
		o.traceErr = err
	}
}

// report reduces the accumulated accounting to a result/report pair. Under
// the event engine, Cycles/Latency are the pipelined makespan from the
// discrete-event simulation of the recorded stage grid; everything else is
// bit-identical to the stepped accounting.
func (o *observer) report(predicted, steps int) (perf.Result, Report) {
	e := perf.SumRESPARC(o.layerE)
	var stages [][]StageDur
	var busWait int64
	if o.ev != nil {
		stages = o.ev.stages[:o.ev.nsteps]
		o.cnt.Cycles = int(PipelineMakespan(stages, &busWait))
	}
	lat := float64(o.cnt.Cycles) * o.chip.Opt.Params.NCCycle()
	rep := Report{
		Energy: e, Latency: lat, Counts: o.cnt, Predicted: predicted,
		LayerCycles: o.layerCycles, LayerEnergies: o.layerE,
		LayerSpikes: o.layerSpikes, Stages: stages, BusWait: busWait,
		BusCycles: o.busCycles, Breakdown: o.breakdown, TraceError: o.traceErr,
	}
	res := perf.Result{
		Arch:    "resparc",
		Network: o.chip.Net.Name,
		Energy:  e.Total(),
		Latency: lat,
		Steps:   steps,
	}
	res.SpikesPerStep, res.LayerOccupancy = o.sparsity(steps)
	return res, rep
}

// sparsity reduces the per-layer spike counts to the perf.Result stats:
// average output spikes per timestep over the observed range, and each
// layer's occupancy (fraction of its neurons spiking per timestep).
func (o *observer) sparsity(steps int) (float64, []float64) {
	if steps <= 0 {
		return 0, nil
	}
	total := 0
	occ := make([]float64, o.hi-o.lo)
	for j := range o.layerSpikes {
		total += o.layerSpikes[j]
		if n := o.chip.Net.Layers[o.lo+j].OutSize(); n > 0 {
			occ[j] = float64(o.layerSpikes[j]) / (float64(steps) * float64(n))
		}
	}
	return float64(total) / float64(steps), occ
}

// Accountant charges the chip's event/energy accounting for a contiguous
// global layer range [lo, hi) — the primitive behind internal/shard's
// multi-chip execution. It implements snn.Observer over the spike vectors
// of that range (local indices, input = the range's boundary spikes), and
// its Report slices the single-chip accounting exactly: concatenating the
// per-layer cycles/energies of adjacent ranges and reducing in layer order
// reproduces the whole chip's report bit for bit.
type Accountant struct {
	obs observer
}

// NewAccountant returns an accountant for global layers [lo, hi), using the
// chip's configured accounting path (Options.EventEngine).
func (c *Chip) NewAccountant(lo, hi int) (*Accountant, error) {
	return c.NewAccountantOpt(lo, hi, c.Opt.EventEngine)
}

// NewAccountantOpt is NewAccountant with an explicit accounting-path choice,
// so callers honoring a per-call sim.Options.EventEngine override (the shard
// executor) can select the event engine on a chip configured without it.
func (c *Chip) NewAccountantOpt(lo, hi int, eventEngine bool) (*Accountant, error) {
	if lo < 0 || hi > len(c.Net.Layers) || lo >= hi {
		return nil, fmt.Errorf("core: accountant range [%d,%d) of %d layers", lo, hi, len(c.Net.Layers))
	}
	return &Accountant{obs: newObserverOpt(c, lo, hi, eventEngine)}, nil
}

// ObserveStep implements snn.Observer; layers holds the range's spike
// vectors only.
func (a *Accountant) ObserveStep(step int, input *bitvec.Bits, layers []*bitvec.Bits) {
	a.obs.ObserveStep(step, input, layers)
}

// Reset clears the accounting for the next classification (scratch buffers
// are retained).
func (a *Accountant) Reset() { a.obs.reset() }

// Report reduces the range's accounting. Latency covers the charged range's
// cycles only. The per-layer slices are copies: the accountant is reused
// across classifications (Reset), so reports must not alias its buffers.
func (a *Accountant) Report(predicted, steps int) (perf.Result, Report) {
	res, rep := a.obs.report(predicted, steps)
	rep.LayerCycles = append([]int(nil), rep.LayerCycles...)
	rep.LayerEnergies = append([]perf.RESPARCEnergy(nil), rep.LayerEnergies...)
	rep.LayerSpikes = append([]int(nil), rep.LayerSpikes...)
	if rep.Stages != nil {
		st := make([][]StageDur, len(rep.Stages))
		for i, row := range rep.Stages {
			st[i] = append([]StageDur(nil), row...)
		}
		rep.Stages = st
	}
	return res, rep
}

// classifyOne runs one classification on a caller-owned state (reused
// across a worker's batch share) under the given per-call options.
func (c *Chip) classifyOne(st *snn.State, intensity tensor.Vec, enc snn.Encoder, opt sim.Options) (perf.Result, Report, int) {
	obs := newObserverOpt(c, 0, len(c.Net.Layers), c.Opt.EventEngine || opt.EventEngine)
	if opt.EarlyExit {
		steps, predicted := sim.EarlyExitRun(st, intensity, enc, c.Opt.Steps, &obs)
		res, rep := obs.report(predicted, steps)
		return res, rep, steps
	}
	var run snn.RunResult
	if c.Opt.Stepped || opt.Stepped {
		run = st.RunObserved(intensity, enc, c.Opt.Steps, &obs)
	} else {
		bs := c.Opt.BlockSize
		if opt.BlockSize > 0 {
			bs = opt.BlockSize
		}
		run = st.RunBlockedK(intensity, enc, c.Opt.Steps, bs, &obs)
	}
	res, rep := obs.report(run.Prediction, c.Opt.Steps)
	return res, rep, c.Opt.Steps
}

// classifyGroup runs one contiguous group of images batch-major on a
// caller-owned batch state, with one observer per image. The observers see
// exactly the per-step rasters the per-image runner produces (the batch
// runner is bit-identical per image), so accounting, energies and
// predictions match classifyOne bit for bit.
func (c *Chip) classifyGroup(bst *snn.BatchState, inputs []tensor.Vec, encs []snn.Encoder, opt sim.Options) ([]perf.Result, []sim.Report) {
	nb := len(inputs)
	obs := make([]snn.Observer, nb)
	cobs := make([]*observer, nb)
	for i := range obs {
		o := newObserverOpt(c, 0, len(c.Net.Layers), c.Opt.EventEngine || opt.EventEngine)
		cobs[i] = &o
		obs[i] = &o
	}
	bs := c.Opt.BlockSize
	if opt.BlockSize > 0 {
		bs = opt.BlockSize
	}
	runs := bst.RunBlocked(inputs, encs, c.Opt.Steps, bs, obs)
	ress := make([]perf.Result, nb)
	reps := make([]sim.Report, nb)
	for i := range runs {
		res, rep := cobs[i].report(runs[i].Prediction, c.Opt.Steps)
		ress[i] = res
		reps[i] = sim.Report{Predicted: rep.Predicted, Steps: c.Opt.Steps, Detail: rep}
	}
	return ress, reps
}

// Classify implements sim.Backend: one classification with the chip's
// configured runner and step budget.
func (c *Chip) Classify(intensity tensor.Vec, enc snn.Encoder) (perf.Result, sim.Report) {
	res, rep, steps := c.classifyOne(snn.NewState(c.Net), intensity, enc, sim.Options{})
	return res, sim.Report{Predicted: rep.Predicted, Steps: steps, Detail: rep}
}

// ClassifyDetailed is Classify returning the chip's own Report (event
// counters, cycle breakdown, per-layer accounting) instead of the
// backend-neutral sim.Report.
func (c *Chip) ClassifyDetailed(intensity tensor.Vec, enc snn.Encoder) (perf.Result, Report) {
	res, rep, _ := c.classifyOne(snn.NewState(c.Net), intensity, enc, sim.Options{})
	return res, rep
}

// ClassifyEach implements sim.Backend: per-image classification across the
// shared worker pool (internal/parallel) via the one fan-out in sim.Each.
// Each worker owns one simulation state, each sample gets its own encoder,
// and image i's outcome depends only on (input[i], enc(i)), so results are
// bit-identical for any worker count. Options.Batch > 1 routes contiguous
// groups through the batch-major runner (sim.EachGrouped) instead; grouping
// never changes results. Tracing is not supported (the trace writer is not
// concurrency-safe).
func (c *Chip) ClassifyEach(inputs []tensor.Vec, enc sim.EncoderFactory, opt sim.Options) ([]perf.Result, []sim.Report, error) {
	if c.Opt.Trace != nil {
		return nil, nil, fmt.Errorf("core: tracing is not supported with batched classification")
	}
	if err := c.Healthy(); err != nil {
		return nil, nil, err
	}
	if opt.Batch > 1 && !opt.Stepped && !c.Opt.Stepped && !opt.EarlyExit {
		return sim.EachGrouped(inputs, enc, opt, func(batch int) sim.GroupSession {
			bst := snn.NewBatchState(c.Net, batch)
			return func(ins []tensor.Vec, encs []snn.Encoder, _ int) ([]perf.Result, []sim.Report) {
				return c.classifyGroup(bst, ins, encs, opt)
			}
		})
	}
	return sim.Each(inputs, enc, opt, func() sim.Session {
		st := snn.NewState(c.Net)
		return func(in tensor.Vec, e snn.Encoder) (perf.Result, sim.Report) {
			res, rep, steps := c.classifyOne(st, in, e, opt)
			return res, sim.Report{Predicted: rep.Predicted, Steps: steps, Detail: rep}
		}
	})
}

// ClassifyBatch implements sim.Backend: it classifies every input and
// reduces the per-image reports to the chip's batch aggregate — energies
// and latency averaged per classification, event counters and cycle
// breakdowns summed, Predicted == -1 (an aggregate has no single
// prediction). The outcome is bit-identical for any worker count.
func (c *Chip) ClassifyBatch(inputs []tensor.Vec, enc sim.EncoderFactory, opt sim.Options) (perf.Result, sim.Report, error) {
	_, sreps, err := c.ClassifyEach(inputs, enc, opt)
	if err != nil {
		return perf.Result{}, sim.Report{}, err
	}
	reps := make([]Report, len(sreps))
	for i, r := range sreps {
		reps[i] = r.Detail.(Report)
	}
	res, avg := c.reduceReports(reps)
	return res, sim.Report{Predicted: -1, Steps: c.Opt.Steps, Detail: avg}, nil
}

// reduceReports aggregates per-image reports into the batch shape: energies
// and latency averaged per classification, event counters and cycle
// breakdowns summed over the batch.
func (c *Chip) reduceReports(reps []Report) (perf.Result, Report) {
	var total Report
	for _, rep := range reps {
		total.Latency += rep.Latency
		total.Counts = addCounters(total.Counts, rep.Counts)
		total.BusCycles += rep.BusCycles
		total.BusWait += rep.BusWait
		total.Breakdown = addBreakdown(total.Breakdown, rep.Breakdown)
		if total.LayerCycles == nil {
			total.LayerCycles = make([]int, len(rep.LayerCycles))
			total.LayerEnergies = make([]perf.RESPARCEnergy, len(rep.LayerEnergies))
			total.LayerSpikes = make([]int, len(rep.LayerSpikes))
		}
		for li, cyc := range rep.LayerCycles {
			total.LayerCycles[li] += cyc
		}
		for li, sp := range rep.LayerSpikes {
			total.LayerSpikes[li] += sp
		}
		for li, le := range rep.LayerEnergies {
			total.LayerEnergies[li].Neuron += le.Neuron
			total.LayerEnergies[li].Crossbar += le.Crossbar
			total.LayerEnergies[li].Peripherals += le.Peripherals
		}
	}
	n := float64(len(reps))
	for li := range total.LayerEnergies {
		total.LayerEnergies[li].Neuron /= n
		total.LayerEnergies[li].Crossbar /= n
		total.LayerEnergies[li].Peripherals /= n
	}
	avg := Report{
		Energy:        perf.SumRESPARC(total.LayerEnergies),
		Latency:       total.Latency / n,
		Counts:        total.Counts,
		BusCycles:     total.BusCycles,
		BusWait:       total.BusWait,
		Breakdown:     total.Breakdown,
		LayerCycles:   total.LayerCycles,
		LayerEnergies: total.LayerEnergies,
		LayerSpikes:   total.LayerSpikes,
		Predicted:     -1,
	}
	res := perf.Result{
		Arch:    "resparc",
		Network: c.Net.Name,
		Energy:  avg.Energy.Total(),
		Latency: avg.Latency,
		Steps:   c.Opt.Steps,
	}
	res.SpikesPerStep, res.LayerOccupancy = batchSparsity(c, total.LayerSpikes, len(reps), c.Opt.Steps)
	return res, avg
}

// batchSparsity reduces batch-summed per-layer spike counts to the per-image
// average sparsity stats.
func batchSparsity(c *Chip, layerSpikes []int, images, steps int) (float64, []float64) {
	if images <= 0 || steps <= 0 {
		return 0, nil
	}
	total := 0
	occ := make([]float64, len(layerSpikes))
	for li, sp := range layerSpikes {
		total += sp
		if n := c.Net.Layers[li].OutSize(); n > 0 {
			occ[li] = float64(sp) / (float64(images) * float64(steps) * float64(n))
		}
	}
	return float64(total) / (float64(images) * float64(steps)), occ
}

// wordOccupancy returns, per width-bit aligned word of the spike vector,
// whether it contains at least one spike.
func wordOccupancy(v *bitvec.Bits, width int) []bool {
	n := (v.Len() + width - 1) / width
	out := make([]bool, n)
	v.ForEachSet(func(i int) { out[i/width] = true })
	return out
}

func addBreakdown(a, b CycleBreakdown) CycleBreakdown {
	a.Sync += b.Sync
	a.Bus += b.Bus
	a.Delivery += b.Delivery
	a.Integrate += b.Integrate
	a.Drain += b.Drain
	return a
}

func addCounters(a, b Counters) Counters {
	a.Cycles += b.Cycles
	a.BusWords += b.BusWords
	a.BusWordsSuppressed += b.BusWordsSuppressed
	a.PacketsDelivered += b.PacketsDelivered
	a.PacketsSuppressed += b.PacketsSuppressed
	a.MCAActivations += b.MCAActivations
	a.RowsDriven += b.RowsDriven
	a.Integrations += b.Integrations
	a.Spikes += b.Spikes
	a.ExtTransfers += b.ExtTransfers
	return a
}
