package core

import (
	"errors"
	"sync"
	"testing"

	"resparc/internal/fault"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func faultTestChip(t *testing.T) *Chip {
	t.Helper()
	net := smallMLP(t, 1)
	m := mapped(t, net, 16)
	opt := DefaultOptions()
	opt.Steps = 8
	chip, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func faultTestInputs(n, size int) []tensor.Vec {
	out := make([]tensor.Vec, n)
	for i := range out {
		out[i] = tensor.NewVec(size)
		for j := range out[i] {
			out[i][j] = float64((i+j)%7) / 7
		}
	}
	return out
}

func TestHealthyNoCampaign(t *testing.T) {
	chip := faultTestChip(t)
	if err := chip.Healthy(); err != nil {
		t.Fatalf("fresh chip unhealthy: %v", err)
	}
	// A campaign with only device-level faults does not kill the chip.
	chip.SetFaults(fault.Campaign{Seed: 1, StuckFraction: 0.01})
	if err := chip.Healthy(); err != nil {
		t.Fatalf("device-level campaign must not kill the chip: %v", err)
	}
}

func TestDeadMPEFailsClassification(t *testing.T) {
	chip := faultTestChip(t)
	// Kill an mPE the mapping actually uses (the first layer's first).
	deadMPE := chip.Map.Layers[0].MCAs[0].MPE
	chip.SetFaults(fault.Campaign{DeadMPEs: []int{deadMPE}})
	err := chip.Healthy()
	var deg *ErrDegraded
	if !errors.As(err, &deg) {
		t.Fatalf("Healthy() = %v, want *ErrDegraded", err)
	}
	if deg.DeadMCAs == 0 || deg.First.MPE != deadMPE {
		t.Fatalf("degradation report %+v", deg)
	}
	inputs := faultTestInputs(3, chip.Net.Input.Size())
	enc := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.5, int64(i)) }
	if _, _, err := chip.ClassifyEach(inputs, enc, sim.Options{Workers: 2}); !errors.As(err, &deg) {
		t.Fatalf("ClassifyEach on dead hardware: %v, want *ErrDegraded", err)
	}
	if _, _, err := chip.ClassifyBatch(inputs, enc, sim.Options{}); !errors.As(err, &deg) {
		t.Fatalf("ClassifyBatch on dead hardware: %v, want *ErrDegraded", err)
	}
	// A dead mPE the mapping does not use is harmless.
	chip.SetFaults(fault.Campaign{DeadMPEs: []int{chip.Map.MPEs + 50}})
	if err := chip.Healthy(); err != nil {
		t.Fatalf("unused dead mPE must not degrade the mapping: %v", err)
	}
	// Clearing restores service.
	chip.SetFaults(fault.Campaign{DeadMPEs: []int{deadMPE}})
	chip.ClearFaults()
	if _, _, err := chip.ClassifyEach(inputs, enc, sim.Options{Workers: 2}); err != nil {
		t.Fatalf("classification after ClearFaults: %v", err)
	}
}

func TestDeadSlotDetected(t *testing.T) {
	chip := faultTestChip(t)
	a := &chip.Map.Layers[0].MCAs[0]
	chip.SetFaults(fault.Campaign{DeadSlots: []fault.SlotID{{MPE: a.MPE, Slot: a.Slot}}})
	if chip.Healthy() == nil {
		t.Fatal("dead slot not detected")
	}
	// A different slot of the same mPE maps nothing in this small net only
	// if unused; use a clearly out-of-range slot id instead.
	chip.SetFaults(fault.Campaign{DeadSlots: []fault.SlotID{{MPE: a.MPE, Slot: 99}}})
	if err := chip.Healthy(); err != nil {
		t.Fatalf("unused dead slot must not degrade the mapping: %v", err)
	}
}

// SetFaults must be safe to flip while classifications run (the serving
// layer injects/clears campaigns on live chips). Run with -race.
func TestSetFaultsConcurrentWithClassification(t *testing.T) {
	chip := faultTestChip(t)
	inputs := faultTestInputs(4, chip.Net.Input.Size())
	enc := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.5, int64(i)) }
	deadMPE := chip.Map.Layers[0].MCAs[0].MPE
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, _, err := chip.ClassifyEach(inputs, enc, sim.Options{Workers: 2})
				if err != nil {
					var deg *ErrDegraded
					if !errors.As(err, &deg) {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if i%2 == 0 {
				chip.SetFaults(fault.Campaign{DeadMPEs: []int{deadMPE}})
			} else {
				chip.ClearFaults()
			}
		}
	}()
	wg.Wait()
}
