package core

import (
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/mapping"
	"resparc/internal/mpe"
	"resparc/internal/neurocell"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

func randDense(t *testing.T, rng *rand.Rand, in, out int, th float64) *snn.Layer {
	t.Helper()
	w := tensor.NewMat(out, in)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.3
	}
	l, err := snn.NewDense("d", in, out, w, th)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func smallMLP(t *testing.T, seed int64) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l1 := randDense(t, rng, 40, 24, 1)
	l2 := randDense(t, rng, 24, 10, 1)
	net, err := snn.NewNetwork("mlp", tensor.Shape3{H: 1, W: 1, C: 40}, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func smallCNN(t *testing.T, seed int64) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 8, W: 8, C: 1}, K: 3, Stride: 1, Pad: 0, OutC: 4}
	w := tensor.NewMat(4, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.4
	}
	conv, err := snn.NewConv("c", geom, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := snn.NewPool("p", tensor.Shape3{H: 6, W: 6, C: 4}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	fc := randDense(t, rng, 36, 5, 1)
	net, err := snn.NewNetwork("cnn", geom.In, conv, pool, fc)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func mapped(t *testing.T, net *snn.Network, size int) *mapping.Mapping {
	t.Helper()
	cfg := mapping.DefaultConfig()
	cfg.MCASize = size
	cfg.Tech = device.PCM
	m, err := mapping.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The transaction-level model must count exactly the events the cycle-level
// NeuroCell simulator observes — including cycles — for MLPs and CNNs.
func TestCountsMatchCycleLevelSim(t *testing.T) {
	for name, net := range map[string]*snn.Network{"mlp": smallMLP(t, 1), "cnn": smallCNN(t, 2)} {
		for _, size := range []int{8, 16, 64} {
			m := mapped(t, net, size)
			opt := DefaultOptions()
			opt.Steps = 25
			chip, err := New(net, m, opt)
			if err != nil {
				t.Fatal(err)
			}
			cyc, err := neurocell.New(net, m, mpe.Ideal, xbar.Config{})
			if err != nil {
				t.Fatal(err)
			}
			// Drive both with identical spike trains.
			intensity := tensor.NewVec(net.Input.Size())
			rng := rand.New(rand.NewSource(3))
			for i := range intensity {
				intensity[i] = rng.Float64()
			}
			_, rep := chip.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, 7))

			cyc.Reset()
			enc := snn.NewPoissonEncoder(0.8, 7)
			in := bitvec.New(net.Input.Size())
			for s := 0; s < opt.Steps; s++ {
				enc.Encode(intensity, in)
				cyc.Step(in)
			}
			cs := cyc.Stats
			got := rep.Counts
			if got.BusWords != cs.BusWords || got.BusWordsSuppressed != cs.BusWordsSuppressed {
				t.Fatalf("%s/%d bus: %+v vs %+v", name, size, got, cs)
			}
			if got.PacketsDelivered != cs.PacketsDelivered || got.PacketsSuppressed != cs.PacketsSuppressed {
				t.Fatalf("%s/%d packets: %+v vs %+v", name, size, got, cs)
			}
			if got.MCAActivations != cs.MCAActivations || got.RowsDriven != cs.RowsDriven {
				t.Fatalf("%s/%d activations: %+v vs %+v", name, size, got, cs)
			}
			if got.Integrations != cs.Integrations || got.Spikes != cs.Spikes {
				t.Fatalf("%s/%d integrations/spikes: %+v vs %+v", name, size, got, cs)
			}
			if got.ExtTransfers != cs.ExtTransfers {
				t.Fatalf("%s/%d ext: %d vs %d", name, size, got.ExtTransfers, cs.ExtTransfers)
			}
			if got.Cycles != cs.Cycles {
				t.Fatalf("%s/%d cycles: %d vs %d", name, size, got.Cycles, cs.Cycles)
			}
		}
	}
}

func TestSilenceCostsOnlyZeroChecks(t *testing.T) {
	net := smallMLP(t, 4)
	m := mapped(t, net, 16)
	chip, err := New(net, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	intensity := tensor.NewVec(net.Input.Size()) // all zero -> no spikes ever
	_, rep := chip.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.9, 1))
	if rep.Counts.MCAActivations != 0 || rep.Counts.Spikes != 0 || rep.Counts.BusWords != 0 {
		t.Fatalf("events from silence: %+v", rep.Counts)
	}
	if rep.Energy.Crossbar != 0 || rep.Energy.Neuron != 0 {
		t.Fatalf("compute energy from silence: %+v", rep.Energy)
	}
	if rep.Energy.Peripherals <= 0 {
		t.Fatal("zero-check energy must still be charged")
	}
	if rep.Counts.BusWordsSuppressed == 0 || rep.Counts.PacketsSuppressed == 0 {
		t.Fatal("suppression counters empty")
	}
}

// Disabling event-drivenness must increase energy (Fig 13's w/o bar) and
// never change the classification.
func TestEventDrivenSavesEnergy(t *testing.T) {
	net := smallMLP(t, 5)
	m := mapped(t, net, 16)
	intensity := tensor.NewVec(net.Input.Size())
	rng := rand.New(rand.NewSource(6))
	for i := range intensity {
		intensity[i] = 0.3 * rng.Float64() // sparse activity
	}
	optOn := DefaultOptions()
	optOn.Steps = 30
	chipOn, err := New(net, m, optOn)
	if err != nil {
		t.Fatal(err)
	}
	optOff := optOn
	optOff.EventDriven = false
	chipOff, err := New(net, m, optOff)
	if err != nil {
		t.Fatal(err)
	}
	resOn, repOn := chipOn.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, 9))
	resOff, repOff := chipOff.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, 9))
	if resOff.Energy <= resOn.Energy {
		t.Fatalf("event-drivenness saved nothing: %v vs %v", resOn.Energy, resOff.Energy)
	}
	if repOn.Predicted != repOff.Predicted {
		t.Fatal("event-drivenness changed the classification")
	}
	if repOff.Counts.PacketsSuppressed != 0 || repOff.Counts.BusWordsSuppressed != 0 {
		t.Fatal("w/o mode must not suppress")
	}
	// Neuron energy also rises w/o event-drivenness (all MCAs integrate
	// every step) — the Fig 13 breakdown.
	if repOff.Energy.Neuron <= repOn.Energy.Neuron {
		t.Fatalf("neuron energy: %v vs %v", repOn.Energy.Neuron, repOff.Energy.Neuron)
	}
}

func TestOptionsValidation(t *testing.T) {
	net := smallMLP(t, 7)
	m := mapped(t, net, 16)
	bad := DefaultOptions()
	bad.PacketWidth = 0
	if _, err := New(net, m, bad); err == nil {
		t.Fatal("packet width 0 accepted")
	}
	bad = DefaultOptions()
	bad.Steps = 0
	if _, err := New(net, m, bad); err == nil {
		t.Fatal("steps 0 accepted")
	}
	other := smallMLP(t, 8)
	if _, err := New(other, m, DefaultOptions()); err == nil {
		t.Fatal("foreign mapping accepted")
	}
}

// Narrower packets suppress more often on sparse data (§5.3: zeros with
// smaller run-lengths are more probable).
func TestNarrowPacketsSuppressMore(t *testing.T) {
	net := smallMLP(t, 9)
	m := mapped(t, net, 16)
	intensity := tensor.NewVec(net.Input.Size())
	rng := rand.New(rand.NewSource(10))
	for i := range intensity {
		if rng.Float64() < 0.3 {
			intensity[i] = 0.5
		}
	}
	fracFor := func(width int) float64 {
		opt := DefaultOptions()
		opt.PacketWidth = width
		opt.Steps = 40
		chip, err := New(net, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		_, rep := chip.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.7, 11))
		total := rep.Counts.PacketsDelivered + rep.Counts.PacketsSuppressed
		if total == 0 {
			t.Fatal("no packets at all")
		}
		return float64(rep.Counts.PacketsSuppressed) / float64(total)
	}
	if f8, f64 := fracFor(8), fracFor(64); f8 <= f64 {
		t.Fatalf("8-bit packets should suppress more often: %v vs %v", f8, f64)
	}
}

func TestClassifyBatch(t *testing.T) {
	net := smallMLP(t, 12)
	m := mapped(t, net, 16)
	chip, err := New(net, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := chip.ClassifyBatch(nil, func(int) snn.Encoder { return snn.NewPoissonEncoder(0.5, 1) }, sim.Options{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	inputs := make([]tensor.Vec, 3)
	rng := rand.New(rand.NewSource(13))
	for i := range inputs {
		inputs[i] = tensor.NewVec(net.Input.Size())
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()
		}
	}
	res, srep, err := chip.ClassifyBatch(inputs, func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 2+int64(i)) }, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := srep.Detail.(Report)
	if res.Energy <= 0 || res.Latency <= 0 || rep.Energy.Total() <= 0 {
		t.Fatalf("batch result %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
}
