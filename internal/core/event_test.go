package core

import (
	"math/rand"
	"reflect"
	"testing"

	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// classifyBoth runs the same (network, input, encoder seed) through the
// stepped and the event-engine accounting paths and returns both reports.
func classifyBoth(t *testing.T, net *snn.Network, size, steps int, seed int64) (perfStepped, perfEvent Report, resStepped, resEvent tensor.Vec) {
	t.Helper()
	m := mapped(t, net, size)
	opt := DefaultOptions()
	opt.Steps = steps

	intensity := tensor.NewVec(net.Input.Size())
	rng := rand.New(rand.NewSource(seed))
	for i := range intensity {
		intensity[i] = rng.Float64()
	}

	chipS, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	rs, repS := chipS.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, seed))

	opt.EventEngine = true
	chipE, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	re, repE := chipE.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, seed))

	return repS, repE, tensor.Vec{rs.Energy, float64(rs.Steps)}, tensor.Vec{re.Energy, float64(re.Steps)}
}

// TestEventSteppedBitIdentical is the tentpole invariant: the event-engine
// accounting path must reproduce the stepped observer's predictions,
// energies and event counters bit for bit — only Cycles (and the latency
// derived from it) may differ, and only downward (pipelining overlaps
// stages; it never adds work).
func TestEventSteppedBitIdentical(t *testing.T) {
	nets := map[string]*snn.Network{"mlp": smallMLP(t, 1), "cnn": smallCNN(t, 2)}
	for name, net := range nets {
		for _, size := range []int{8, 16, 64} {
			repS, repE, resS, resE := classifyBoth(t, net, size, 25, 7)
			if repS.Predicted != repE.Predicted {
				t.Fatalf("%s/%d: predicted %d (stepped) vs %d (event)", name, size, repS.Predicted, repE.Predicted)
			}
			if repS.Energy != repE.Energy {
				t.Fatalf("%s/%d: energy %+v vs %+v not bit-identical", name, size, repS.Energy, repE.Energy)
			}
			if !reflect.DeepEqual(repS.LayerEnergies, repE.LayerEnergies) {
				t.Fatalf("%s/%d: per-layer energies diverged", name, size)
			}
			if !reflect.DeepEqual(resS, resE) {
				t.Fatalf("%s/%d: result energy/steps diverged: %v vs %v", name, size, resS, resE)
			}
			// Counters: everything but Cycles must match exactly.
			cs, ce := repS.Counts, repE.Counts
			cs.Cycles, ce.Cycles = 0, 0
			if cs != ce {
				t.Fatalf("%s/%d: counters diverged (beyond Cycles): %+v vs %+v", name, size, cs, ce)
			}
			if !reflect.DeepEqual(repS.LayerCycles, repE.LayerCycles) {
				t.Fatalf("%s/%d: per-layer cycle sums diverged: %v vs %v", name, size, repS.LayerCycles, repE.LayerCycles)
			}
			if repS.BusCycles != repE.BusCycles || repS.Breakdown != repE.Breakdown {
				t.Fatalf("%s/%d: phase sums diverged: bus %d vs %d, breakdown %+v vs %+v",
					name, size, repS.BusCycles, repE.BusCycles, repS.Breakdown, repE.Breakdown)
			}
			if !reflect.DeepEqual(repS.LayerSpikes, repE.LayerSpikes) {
				t.Fatalf("%s/%d: spike counts diverged: %v vs %v", name, size, repS.LayerSpikes, repE.LayerSpikes)
			}
			// The pipelined makespan must beat (or match) the serial sum and
			// respect its structural lower bounds.
			if repE.Counts.Cycles > repS.Counts.Cycles {
				t.Fatalf("%s/%d: event cycles %d exceed stepped %d", name, size, repE.Counts.Cycles, repS.Counts.Cycles)
			}
			lower := repE.BusCycles
			for _, lc := range repE.LayerCycles {
				if lc > lower {
					lower = lc
				}
			}
			if repE.Counts.Cycles < lower {
				t.Fatalf("%s/%d: event cycles %d below structural bound %d", name, size, repE.Counts.Cycles, lower)
			}
			if repE.Stages == nil || repS.Stages != nil {
				t.Fatalf("%s/%d: stage grids: event nil=%v stepped nil=%v", name, size, repE.Stages == nil, repS.Stages == nil)
			}
		}
	}
}

// TestEventEngineViaOptions: the per-call sim.Options toggle selects the
// event path on a chip constructed without it, and the batch runners return
// the same pipelined cycles as the serial path.
func TestEventEngineViaOptions(t *testing.T) {
	net := smallMLP(t, 4)
	m := mapped(t, net, 16)
	opt := DefaultOptions()
	opt.Steps = 20
	chip, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]tensor.Vec, 6)
	rng := rand.New(rand.NewSource(9))
	for i := range inputs {
		inputs[i] = tensor.NewVec(net.Input.Size())
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()
		}
	}
	factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, int64(i)) }

	ref, refReps, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, gotReps, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: workers, EventEngine: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range inputs {
			rd := refReps[i].Detail.(Report)
			gd := gotReps[i].Detail.(Report)
			if gotReps[i].Predicted != refReps[i].Predicted || gd.Energy != rd.Energy {
				t.Fatalf("workers=%d image %d: prediction/energy diverged from stepped", workers, i)
			}
			if gd.Counts.Cycles > rd.Counts.Cycles {
				t.Fatalf("workers=%d image %d: event cycles %d exceed stepped %d",
					workers, i, gd.Counts.Cycles, rd.Counts.Cycles)
			}
			if got[i].Latency > ref[i].Latency {
				t.Fatalf("workers=%d image %d: event latency above stepped", workers, i)
			}
			if got[i].SpikesPerStep <= 0 || len(got[i].LayerOccupancy) != len(net.Layers) {
				t.Fatalf("workers=%d image %d: sparsity stats missing: %+v", workers, i, got[i])
			}
		}
	}
	// Determinism across repeated event-mode runs.
	a, aReps, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: 2, EventEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	b, bReps, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: 4, EventEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		if !reflect.DeepEqual(a[i], b[i]) || aReps[i].Predicted != bReps[i].Predicted {
			t.Fatalf("image %d: event-mode results vary across worker counts", i)
		}
	}
}

// TestSparsityStats: the stepped path records the same spike-sparsity stats
// as the event path, and they are internally consistent.
func TestSparsityStats(t *testing.T) {
	net := smallMLP(t, 5)
	m := mapped(t, net, 16)
	opt := DefaultOptions()
	opt.Steps = 30
	chip, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	intensity := tensor.NewVec(net.Input.Size())
	rng := rand.New(rand.NewSource(6))
	for i := range intensity {
		intensity[i] = rng.Float64()
	}
	res, rep := chip.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, 2))
	var spikes int
	for _, s := range rep.LayerSpikes {
		spikes += s
	}
	want := float64(spikes) / float64(opt.Steps)
	if res.SpikesPerStep != want {
		t.Fatalf("SpikesPerStep = %v, want %v", res.SpikesPerStep, want)
	}
	if len(res.LayerOccupancy) != len(net.Layers) {
		t.Fatalf("LayerOccupancy has %d entries, want %d", len(res.LayerOccupancy), len(net.Layers))
	}
	for j, occ := range res.LayerOccupancy {
		wantOcc := float64(rep.LayerSpikes[j]) / float64(opt.Steps*net.Layers[j].OutSize())
		if occ != wantOcc {
			t.Fatalf("layer %d occupancy = %v, want %v", j, occ, wantOcc)
		}
		if occ < 0 || occ > 1 {
			t.Fatalf("layer %d occupancy %v out of [0,1]", j, occ)
		}
	}
}
