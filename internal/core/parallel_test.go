package core

import (
	"math/rand"
	"reflect"
	"testing"

	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func batchInputs(net *snn.Network, n int, seed int64) []tensor.Vec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]tensor.Vec, n)
	for i := range out {
		out[i] = tensor.NewVec(net.Input.Size())
		for j := range out[i] {
			out[i][j] = rng.Float64()
		}
	}
	return out
}

// Parallel batches must be deterministic and equal to a single-worker run.
func TestClassifyBatchParallelDeterministic(t *testing.T) {
	net := smallMLP(t, 41)
	m := mapped(t, net, 16)
	opt := DefaultOptions()
	opt.Steps = 20
	chip, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(net, 6, 42)
	factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 100+int64(i)) }

	serial, serialSRep, err := chip.ClassifyBatch(inputs, factory, sim.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, parSRep, err := chip.ClassifyBatch(inputs, factory, sim.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Energy != par.Energy || serial.Latency != par.Latency {
		t.Fatalf("parallel diverged: %v/%v vs %v/%v", serial.Energy, serial.Latency, par.Energy, par.Latency)
	}
	serialRep := serialSRep.Detail.(Report)
	parRep := parSRep.Detail.(Report)
	if serialRep.Counts != parRep.Counts {
		t.Fatalf("counters diverged: %+v vs %+v", serialRep.Counts, parRep.Counts)
	}
	if serialRep.BusCycles != parRep.BusCycles {
		t.Fatal("bus cycles diverged")
	}
	for i := range serialRep.LayerCycles {
		if serialRep.LayerCycles[i] != parRep.LayerCycles[i] {
			t.Fatal("layer cycles diverged")
		}
	}
}

func TestClassifyBatchParallelValidation(t *testing.T) {
	net := smallMLP(t, 43)
	m := mapped(t, net, 16)
	chip, err := New(net, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := chip.ClassifyBatch(nil, func(int) snn.Encoder { return nil }, sim.Options{Workers: 2}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// Pipelined throughput: the initiation interval is bounded by the slowest
// stage and never exceeds the sequential per-step latency.
func TestPipelineInterval(t *testing.T) {
	net := smallMLP(t, 44)
	m := mapped(t, net, 16)
	opt := DefaultOptions()
	opt.Steps = 20
	chip, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	intensity := batchInputs(net, 1, 45)[0]
	res, rep := chip.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, 46))
	if len(rep.LayerCycles) != len(net.Layers) {
		t.Fatalf("LayerCycles %d", len(rep.LayerCycles))
	}
	sum := 0
	for _, c := range rep.LayerCycles {
		sum += c
	}
	if sum != rep.Counts.Cycles {
		t.Fatalf("layer cycles %d don't sum to total %d", sum, rep.Counts.Cycles)
	}
	ii := rep.PipelineInterval(opt.Steps)
	seqPerStep := (rep.Counts.Cycles + opt.Steps - 1) / opt.Steps
	if ii <= 0 || ii > seqPerStep {
		t.Fatalf("interval %d outside (0, %d]", ii, seqPerStep)
	}
	// Pipelined throughput must beat (or match) the sequential rate.
	seq := res.Throughput()
	pipe := rep.PipelinedThroughput(opt.Steps, opt.Params.NCCycle())
	if pipe < seq {
		t.Fatalf("pipelined throughput %v below sequential %v", pipe, seq)
	}
	// Degenerate inputs.
	if rep.PipelineInterval(0) != 0 || rep.PipelinedThroughput(0, 5e-9) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

// Early exit must stop at the first output spike, costing a fraction of the
// full run's energy and latency, and must agree with TTFS decoding of the
// full functional run.
func TestClassifyEarlyExit(t *testing.T) {
	net := smallMLP(t, 81)
	m := mapped(t, net, 16)
	opt := DefaultOptions()
	opt.Steps = 40
	chip, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	intensity := batchInputs(net, 1, 82)[0]
	fullRes, _ := chip.Classify(intensity, snn.NewPoissonEncoder(0.9, 83))
	eeRess, eeReps, err := chip.ClassifyEach([]tensor.Vec{intensity},
		func(int) snn.Encoder { return snn.NewPoissonEncoder(0.9, 83) },
		sim.Options{Workers: 1, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	eeRes, eeRep := eeRess[0], eeReps[0]
	steps := eeRep.Steps
	if steps <= 0 || steps > opt.Steps {
		t.Fatalf("steps %d", steps)
	}
	if steps < opt.Steps {
		if eeRes.Energy >= fullRes.Energy || eeRes.Latency >= fullRes.Latency {
			t.Fatalf("early exit saved nothing: %v/%v vs %v/%v",
				eeRes.Energy, eeRes.Latency, fullRes.Energy, fullRes.Latency)
		}
	}
	// Agreement with the functional model's TTFS decode at the exit step.
	st := snn.NewState(net)
	ref := st.Run(intensity, snn.NewPoissonEncoder(0.9, 83), steps)
	if eeRep.Predicted != ref.TTFSPrediction() {
		t.Fatalf("early-exit predicted %d, functional TTFS %d", eeRep.Predicted, ref.TTFSPrediction())
	}

	// Silent input: runs the full budget, predicts -1.
	silent := tensor.NewVec(net.Input.Size())
	_, reps2, err := chip.ClassifyEach([]tensor.Vec{silent},
		func(int) snn.Encoder { return snn.NewPoissonEncoder(0.9, 84) },
		sim.Options{Workers: 1, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	if reps2[0].Steps != opt.Steps || reps2[0].Predicted != -1 {
		t.Fatalf("silent early exit: steps %d predicted %d", reps2[0].Steps, reps2[0].Predicted)
	}
}

// ClassifyEach is the per-image primitive: its results must be bit-identical
// for any worker count, its per-image predictions must match the serial
// single-image reference, and its reduction must equal the batch aggregate.
func TestClassifyEachMatchesSerialReference(t *testing.T) {
	net := smallMLP(t, 51)
	m := mapped(t, net, 16)
	opt := DefaultOptions()
	opt.Steps = 20
	chip, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(net, 6, 52)
	factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 300+int64(i)) }

	one, oneReps, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, manyReps, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		if !reflect.DeepEqual(one[i], many[i]) {
			t.Fatalf("image %d result diverged across worker counts: %+v vs %+v", i, one[i], many[i])
		}
		oneDet := oneReps[i].Detail.(Report)
		manyDet := manyReps[i].Detail.(Report)
		if oneReps[i].Predicted != manyReps[i].Predicted || oneDet.Counts != manyDet.Counts {
			t.Fatalf("image %d report diverged across worker counts", i)
		}
		// Serial single-image reference, bit for bit.
		refRes, refRep := chip.Classify(inputs[i], factory(i))
		if !reflect.DeepEqual(one[i], refRes) || oneReps[i].Predicted != refRep.Predicted {
			t.Fatalf("image %d diverged from Classify: %+v vs %+v", i, one[i], refRes)
		}
	}
	if _, _, err := chip.ClassifyEach(nil, factory, sim.Options{Workers: 2}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// Options.Batch routes ClassifyEach through the batch-major runner; every
// (batch, workers) combination must stay bit-identical to the per-image
// serial reference — results, predictions, counters, per-layer accounting —
// on both the MLP and the conv+pool CNN fixture.
func TestClassifyEachBatchMajorEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  *snn.Network
	}{
		{"mlp", smallMLP(t, 91)},
		{"cnn", smallCNN(t, 92)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := mapped(t, tc.net, 16)
			opt := DefaultOptions()
			opt.Steps = 20
			chip, err := New(tc.net, m, opt)
			if err != nil {
				t.Fatal(err)
			}
			inputs := batchInputs(tc.net, 7, 93)
			factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 600+int64(i)) }
			ref, refReps, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{2, 3, 8} {
				for _, workers := range []int{1, 3} {
					got, gotReps, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: workers, Batch: batch})
					if err != nil {
						t.Fatal(err)
					}
					for i := range inputs {
						if !reflect.DeepEqual(got[i], ref[i]) {
							t.Fatalf("batch=%d workers=%d image %d: result %+v, want %+v",
								batch, workers, i, got[i], ref[i])
						}
						gd := gotReps[i].Detail.(Report)
						rd := refReps[i].Detail.(Report)
						if gotReps[i].Predicted != refReps[i].Predicted || gd.Counts != rd.Counts ||
							gd.BusCycles != rd.BusCycles || gd.Breakdown != rd.Breakdown {
							t.Fatalf("batch=%d workers=%d image %d: report diverged", batch, workers, i)
						}
						for li := range rd.LayerCycles {
							if gd.LayerCycles[li] != rd.LayerCycles[li] || gd.LayerEnergies[li] != rd.LayerEnergies[li] {
								t.Fatalf("batch=%d workers=%d image %d layer %d: accounting diverged",
									batch, workers, i, li)
							}
						}
					}
				}
			}
			// Stepped forces the per-image reference path; Batch must be a
			// silent no-op there, not an error.
			st, _, err := chip.ClassifyEach(inputs, factory, sim.Options{Workers: 1, Stepped: true, Batch: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i := range inputs {
				if !reflect.DeepEqual(st[i], ref[i]) {
					t.Fatalf("stepped+batch image %d diverged", i)
				}
			}
		})
	}
}

// Any worker count must return the same aggregated shape: averaged
// energy/latency, summed counters, populated per-layer cycles and breakdown,
// and Predicted == -1 on the aggregate.
func TestClassifyBatchAggregateShapeUnified(t *testing.T) {
	net := smallMLP(t, 53)
	m := mapped(t, net, 16)
	opt := DefaultOptions()
	opt.Steps = 16
	chip, err := New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(net, 4, 54)
	factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 400+int64(i)) }
	_, sRep, err := chip.ClassifyBatch(inputs, factory, sim.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, pRep, err := chip.ClassifyBatch(inputs, factory, sim.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, srep := range []sim.Report{sRep, pRep} {
		rep := srep.Detail.(Report)
		if srep.Predicted != -1 || rep.Predicted != -1 {
			t.Fatalf("aggregate Predicted = %d/%d, want -1", srep.Predicted, rep.Predicted)
		}
		if len(rep.LayerCycles) != len(net.Layers) {
			t.Fatalf("aggregate LayerCycles %d, want %d", len(rep.LayerCycles), len(net.Layers))
		}
		sum := 0
		for _, c := range rep.LayerCycles {
			sum += c
		}
		if sum != rep.Counts.Cycles {
			t.Fatalf("aggregate layer cycles %d don't sum to %d", sum, rep.Counts.Cycles)
		}
		if rep.Breakdown.Total() != rep.Counts.Cycles {
			t.Fatalf("aggregate breakdown %d != cycles %d", rep.Breakdown.Total(), rep.Counts.Cycles)
		}
	}
}
