package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/mapping"
	"resparc/internal/mpe"
	"resparc/internal/neurocell"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

// randomNet builds a random small network: 1-3 layers drawn from dense,
// conv and pool kinds with consistent shapes.
func randomNet(rng *rand.Rand) (*snn.Network, error) {
	shape := tensor.Shape3{H: 4 + 2*rng.Intn(3), W: 4 + 2*rng.Intn(3), C: 1 + rng.Intn(2)}
	input := shape
	var layers []*snn.Layer
	nLayers := 1 + rng.Intn(3)
	for i := 0; i < nLayers; i++ {
		switch rng.Intn(3) {
		case 0: // dense
			out := 4 + rng.Intn(24)
			w := tensor.NewMat(out, shape.Size())
			for j := range w.Data {
				w.Data[j] = rng.NormFloat64() * 0.4
			}
			l, err := snn.NewDense("d", shape.Size(), out, w, 0.5+rng.Float64())
			if err != nil {
				return nil, err
			}
			l.In = shape
			shape = tensor.Shape3{H: 1, W: 1, C: out}
			l.Out = shape
			layers = append(layers, l)
		case 1: // conv
			k := 1 + rng.Intn(3)
			geom := tensor.ConvGeom{In: shape, K: k, Stride: 1, Pad: rng.Intn(k), OutC: 1 + rng.Intn(6)}
			if _, err := geom.OutShape(); err != nil {
				continue
			}
			w := tensor.NewMat(geom.OutC, geom.FanIn())
			for j := range w.Data {
				w.Data[j] = rng.NormFloat64() * 0.4
			}
			l, err := snn.NewConv("c", geom, w, 0.5+rng.Float64())
			if err != nil {
				return nil, err
			}
			shape = l.Out
			layers = append(layers, l)
		default: // pool (only if divisible)
			if shape.H%2 != 0 || shape.W%2 != 0 || shape.H < 2 || shape.W < 2 {
				continue
			}
			l, err := snn.NewPool("p", shape, 2, 0.499)
			if err != nil {
				return nil, err
			}
			shape = l.Out
			layers = append(layers, l)
		}
	}
	if len(layers) == 0 {
		w := tensor.NewMat(8, shape.Size())
		l, err := snn.NewDense("d", shape.Size(), 8, w, 1)
		if err != nil {
			return nil, err
		}
		l.In = shape
		layers = append(layers, l)
	}
	return snn.NewNetwork("fuzz", input, layers...)
}

// Fuzz: for random topologies, random MCA sizes and random spike trains,
// the transaction-level chip model and the cycle-level NeuroCell simulator
// must agree on every event counter, including cycles.
func TestFuzzCountersMatchCycleLevel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, err := randomNet(rng)
		if err != nil {
			return true // un-constructible random draw; skip
		}
		size := []int{8, 16, 32}[rng.Intn(3)]
		mc := mapping.DefaultConfig()
		mc.MCASize = size
		mc.Tech = device.PCM
		m, err := mapping.Map(net, mc)
		if err != nil {
			return false
		}
		steps := 5 + rng.Intn(10)
		opt := DefaultOptions()
		opt.Steps = steps
		chip, err := New(net, m, opt)
		if err != nil {
			return false
		}
		cyc, err := neurocell.New(net, m, mpe.Ideal, xbar.Config{})
		if err != nil {
			return false
		}
		intensity := tensor.NewVec(net.Input.Size())
		for i := range intensity {
			intensity[i] = rng.Float64()
		}
		encSeed := rng.Int63()
		_, rep := chip.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.7, encSeed))

		enc := snn.NewPoissonEncoder(0.7, encSeed)
		in := bitvec.New(net.Input.Size())
		for s := 0; s < steps; s++ {
			enc.Encode(intensity, in)
			cyc.Step(in)
		}
		a, b := rep.Counts, cyc.Stats
		return a.Cycles == b.Cycles &&
			a.BusWords == b.BusWords && a.BusWordsSuppressed == b.BusWordsSuppressed &&
			a.PacketsDelivered == b.PacketsDelivered && a.PacketsSuppressed == b.PacketsSuppressed &&
			a.MCAActivations == b.MCAActivations && a.RowsDriven == b.RowsDriven &&
			a.Integrations == b.Integrations && a.Spikes == b.Spikes &&
			a.ExtTransfers == b.ExtTransfers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
