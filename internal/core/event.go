package core

import (
	"resparc/internal/bitvec"
	"resparc/internal/event"
)

// This file is the event-engine accounting path (Options.EventEngine): the
// same transaction-level model as the stepped observer, restructured so its
// cost scales with spike count instead of timesteps x mapped inputs, and its
// Cycles/Latency come from a discrete-event pipeline simulation (Fig 7a)
// instead of serially summing every stage.
//
// Two invariants pin it to the stepped path:
//
//  1. Bit-identical energies and counters (except Cycles). Float addition is
//     not associative, so the event path replays the stepped observer's
//     exact float-op sequence: per mPE run, first the active MCAs' charges
//     in allocation order, then the run's word charges in first-encounter
//     order (the stepped flushMPE interleaving). Per-MCA factors are
//     precomputed with the very expressions the stepped path evaluates
//     inline, so each added term is the same float64.
//
//  2. The per-phase durations (sync/bus/delivery/integrate/drain) use the
//     same closed forms; only their composition differs — the stepped path
//     sums them serially, the event path feeds them to a pipeline DES where
//     layer stages overlap across timesteps and the shared global bus is a
//     FIFO resource (bus phases of different stages cannot overlap).
//
// The speedup comes from inverting the hot loop: instead of walking every
// MCA's input list against the spike vector each timestep (and deduping
// words through a per-step map), a chip-cached inverse adjacency scatters
// each spike to the MCAs it drives, and word occupancy is stamped during
// the same single pass over the set bits.

// StageDur is the modeled duration of one (timestep, layer) pipeline stage,
// split by resource class: Sync is the global-control flag synchronization,
// Bus the shared global-bus occupancy (serializes across all stages), Local
// the NeuroCell-internal phases (switch delivery, time-multiplexed
// integration, spike drain) that overlap freely across layers.
type StageDur struct{ Sync, Bus, Local int32 }

// mcaPlan precomputes one MCA's per-activation constants. The float factors
// are evaluated with the stepped observer's exact expressions so the charges
// they produce are bit-identical.
type mcaPlan struct {
	factorXbar float64 // crossbar energy per driven row
	integrateE float64 // neuron integration energy per activation
	outs       int32   // len(Outputs)
	group      int32
	ext        bool // MCA lives outside its group owner's mPE
}

// mpeRun is one contiguous run of same-mPE MCAs in allocation order, with
// its deduped source-word list (indices into layerPlan.words) — the unit the
// stepped observer's flushMPE charges per.
type mpeRun struct{ mcaLo, mcaHi, wordLo, wordHi int32 }

// layerPlan is the chip-cached static structure of one layer's mapping.
type layerPlan struct {
	// inToMCA scatters an input bit to the MCAs whose input lists contain it
	// (with multiplicity: an input wired to k rows of one MCA appears k
	// times, matching the stepped per-row count).
	inToMCA [][]int32
	runs    []mpeRun
	words   []int32 // concatenated per-run word lists, first-encounter order
	mcas    []mcaPlan
	nwords  int // words of the layer's input vector at the chip packet width
}

// eventPlans builds (once) the per-layer static plans. Fault campaigns never
// mutate the mapping (they only gate Healthy), so the cache is safe for the
// chip's lifetime.
func (c *Chip) eventPlans() []layerPlan {
	c.plansOnce.Do(func() {
		p := c.Opt.Params
		w := c.Opt.PacketWidth
		plans := make([]layerPlan, len(c.Map.Layers))
		for li := range c.Map.Layers {
			lm := &c.Map.Layers[li]
			pl := &plans[li]
			insz := lm.Layer.InSize()
			pl.nwords = (insz + w - 1) / w
			pl.inToMCA = make([][]int32, insz)
			pl.mcas = make([]mcaPlan, len(lm.MCAs))
			curMPE := -1
			mcaLo, wordLo := int32(0), int32(0)
			seen := map[int]bool{}
			for ai := range lm.MCAs {
				mca := &lm.MCAs[ai]
				if mca.MPE != curMPE {
					if ai > 0 {
						pl.runs = append(pl.runs, mpeRun{mcaLo, int32(ai), wordLo, int32(len(pl.words))})
						mcaLo, wordLo = int32(ai), int32(len(pl.words))
						seen = map[int]bool{}
					}
					curMPE = mca.MPE
				}
				// The stepped observer's inline crossbar/integration math,
				// verbatim, so the precomputed factors carry identical bits.
				usedPerRow := 0.0
				if len(mca.Inputs) > 0 {
					usedPerRow = float64(mca.Taps) / float64(len(mca.Inputs))
				}
				idlePerRow := float64(c.Map.LayerSize(li)) - usedPerRow
				if p.GateIdleColumns {
					idlePerRow = 0
				}
				pl.mcas[ai] = mcaPlan{
					factorXbar: usedPerRow*p.XbarCellActive + idlePerRow*p.XbarCellActive*p.XbarIdleFrac,
					integrateE: float64(len(mca.Outputs)) * p.NeuronIntegrate,
					outs:       int32(len(mca.Outputs)),
					group:      int32(mca.Group),
					ext:        int32(mca.MPE) != c.owner[li][mca.Group],
				}
				lastWord := -1
				for _, in := range mca.Inputs {
					pl.inToMCA[in] = append(pl.inToMCA[in], int32(ai))
					word := int(in) / w
					if word != lastWord {
						lastWord = word
						if !seen[word] {
							seen[word] = true
							pl.words = append(pl.words, int32(word))
						}
					}
				}
			}
			if len(lm.MCAs) > 0 {
				pl.runs = append(pl.runs, mpeRun{mcaLo, int32(len(lm.MCAs)), wordLo, int32(len(pl.words))})
			}
		}
		c.plans = plans
	})
	return c.plans
}

// eventState is the per-observer scratch of the event accounting path. Row
// counts and word occupancy are stamp-managed: a cell is valid only if its
// token matches the current (step, layer) visit, so nothing is cleared
// between steps.
type eventState struct {
	plans   []layerPlan
	token   int32
	rows    [][]int32 // per local layer: spiking-row count per MCA
	rowTok  [][]int32
	wordTok [][]int32 // per local layer: word-occupancy stamp
	stages  [][]StageDur
	nsteps  int
}

func newEventState(c *Chip, lo, hi int) *eventState {
	n := hi - lo
	return &eventState{
		plans:   c.eventPlans(),
		rows:    make([][]int32, n),
		rowTok:  make([][]int32, n),
		wordTok: make([][]int32, n),
	}
}

func (ev *eventState) reset() {
	ev.nsteps = 0
	// Stamp tokens make clearing unnecessary; re-zero only on (absurdly
	// rare) wraparound.
	if ev.token > 1<<30 {
		ev.token = 0
		for j := range ev.rowTok {
			for i := range ev.rowTok[j] {
				ev.rowTok[j][i] = 0
			}
			for i := range ev.wordTok[j] {
				ev.wordTok[j][i] = 0
			}
		}
	}
}

// stageRow returns the (zeroed-by-overwrite) duration row for a step,
// growing the grid as steps are observed.
func (ev *eventState) stageRow(step, layers int) []StageDur {
	for len(ev.stages) <= step {
		ev.stages = append(ev.stages, make([]StageDur, layers))
	}
	if step+1 > ev.nsteps {
		ev.nsteps = step + 1
	}
	return ev.stages[step]
}

func (ev *eventState) layerScratch(j int, pl *layerPlan) (rows, rowTok, wordTok []int32) {
	if ev.rows[j] == nil {
		ev.rows[j] = make([]int32, len(pl.mcas))
		ev.rowTok[j] = make([]int32, len(pl.mcas))
		ev.wordTok[j] = make([]int32, pl.nwords)
	}
	return ev.rows[j], ev.rowTok[j], ev.wordTok[j]
}

// observeEvent is the event-engine twin of the stepped ObserveStep: one pass
// over the set bits stamps word occupancy and scatters per-MCA row counts,
// then charges flow run by run in the stepped float order.
func (o *observer) observeEvent(step int, input *bitvec.Bits, layers []*bitvec.Bits) {
	c := o.chip
	p := c.Opt.Params
	w := c.Opt.PacketWidth
	ed := c.Opt.EventDriven
	ev := o.ev
	cur := input
	row := ev.stageRow(step, o.hi-o.lo)
	for j := 0; j < o.hi-o.lo; j++ {
		gi := o.lo + j
		lm := &c.Map.Layers[gi]
		pl := &ev.plans[gi]
		le := &o.layerE[j]
		prevCnt := o.cnt
		prevE := *le

		// One pass over the spikes: stamp packet-word occupancy and scatter
		// each spike to the MCAs it drives.
		ev.token++
		tok := ev.token
		rows, rowTok, wordTok := ev.layerScratch(j, pl)
		occWords := 0
		cur.ForEachSet(func(i int) {
			wd := i / w
			if wordTok[wd] != tok {
				wordTok[wd] = tok
				occWords++
			}
			for _, m := range pl.inToMCA[i] {
				if rowTok[m] != tok {
					rowTok[m] = tok
					rows[m] = 0
				}
				rows[m]++
			}
		})

		// ---- Global control: event-flag synchronization ----
		syncCycles := p.SyncCyclesPerNC * ((lm.NCLast - lm.NCFirst + 1 + 7) / 8)
		o.breakdown.Sync += syncCycles

		// ---- Global bus & SRAM (§3.1.3) ----
		busCycles := 0
		if c.Map.CrossNC(gi) {
			total := (cur.Len() + w - 1) / w
			sent := occWords
			zero := total - sent
			if !ed {
				sent = total
				zero = 0
			}
			le.Peripherals += float64(total) * p.ZeroCheck
			per := 2.0
			if gi == 0 {
				per = 1.0
			}
			le.Peripherals += float64(sent) * per * (p.BusWord + c.sram.AccessEnergy())
			o.cnt.BusWords += sent
			o.cnt.BusWordsSuppressed += zero
			busCycles = (sent + p.BusWordsPerCycle - 1) / p.BusWordsPerCycle
			o.busCycles += busCycles
			o.breakdown.Bus += busCycles
		}

		// ---- Switch network delivery + MCA activity ----
		// Run by run: active MCA charges in allocation order, then the run's
		// word charges in first-encounter order — the stepped flushMPE
		// interleaving, term for term.
		delivered := 0
		maxMux := int32(0)
		ga := o.groupScratch(j, lm.Groups)
		for i := range ga {
			ga[i] = 0
		}
		for ri := range pl.runs {
			run := &pl.runs[ri]
			for mi := run.mcaLo; mi < run.mcaHi; mi++ {
				var r int32
				if rowTok[mi] == tok {
					r = rows[mi]
				}
				if r == 0 && ed {
					continue
				}
				mp := &pl.mcas[mi]
				o.cnt.MCAActivations++
				o.cnt.RowsDriven += int(r)
				le.Peripherals += p.MPEControl
				le.Crossbar += float64(r) * mp.factorXbar
				o.cnt.Integrations += int(mp.outs)
				le.Neuron += mp.integrateE
				if mp.ext {
					o.cnt.ExtTransfers++
				}
				if ga[mp.group]++; ga[mp.group] > maxMux {
					maxMux = ga[mp.group]
				}
			}
			for wi := run.wordLo; wi < run.wordHi; wi++ {
				le.Peripherals += p.ZeroCheck
				if wordTok[pl.words[wi]] == tok || !ed {
					delivered++
					le.Peripherals += p.SwitchHop + 2*p.BufferAccess
				} else {
					o.cnt.PacketsSuppressed++
				}
			}
		}
		o.cnt.PacketsDelivered += delivered
		sw := lm.Switches(c.Map.Cfg)
		deliveryCycles := (delivered + sw - 1) / sw
		o.breakdown.Delivery += deliveryCycles
		integrateCycles := int(maxMux) * p.IntegrateCycles
		o.breakdown.Integrate += integrateCycles

		// ---- Fire ----
		out := layers[j]
		spikes := out.Count()
		o.cnt.Spikes += spikes
		o.layerSpikes[j] += spikes
		le.Neuron += float64(spikes) * p.NeuronSpike
		le.Peripherals += float64(spikes) * p.SpikeHandling
		drainCycles := 0
		if spikes > 0 || maxMux > 0 {
			mpes := lm.MPELast - lm.MPEFirst + 1
			drainCycles = (spikes + mpes - 1) / mpes
			if spikes == 0 {
				drainCycles++ // threshold-check cycle with no spikes
			}
			o.breakdown.Drain += drainCycles
		}

		local := deliveryCycles + integrateCycles + drainCycles
		row[j] = StageDur{Sync: int32(syncCycles), Bus: int32(busCycles), Local: int32(local)}
		o.layerCycles[j] += syncCycles + busCycles + local

		if c.Opt.Trace != nil {
			o.writeTrace(step, gi, cur, out, prevCnt, prevE)
		}
		cur = out
	}
}

// PipelineMakespan runs the Fig 7(a) pipeline on the event engine: stage
// (layer j, timestep t) starts once stage (j, t-1) and stage (j-1, t) are
// both done, holds the shared global bus (a FIFO resource) for its bus
// phase, and completes after its local phase. Grants follow completion-event
// order — (tick, layer) — so the makespan is deterministic. stages is
// indexed [timestep][layer]; busWait, when non-nil, receives the total
// cycles stages spent queued for the bus.
func PipelineMakespan(stages [][]StageDur, busWait *int64) int64 {
	T := len(stages)
	if T == 0 {
		return 0
	}
	L := len(stages[0])
	if L == 0 {
		return 0
	}
	var eng event.Engine
	var bus event.Resource
	need := make([][]int8, T)
	for t := range need {
		need[t] = make([]int8, L)
		for j := range need[t] {
			if t > 0 {
				need[t][j]++
			}
			if j > 0 {
				need[t][j]++
			}
		}
	}
	var launch func(t, j int)
	signal := func(t, j int) {
		if t >= T || j >= L {
			return
		}
		need[t][j]--
		if need[t][j] <= 0 {
			launch(t, j)
		}
	}
	launch = func(t, j int) {
		d := stages[t][j]
		busAt := eng.Now() + int64(d.Sync)
		end := busAt + int64(d.Local)
		if d.Bus > 0 {
			start := bus.Acquire(busAt, int64(d.Bus))
			end = start + int64(d.Bus) + int64(d.Local)
		}
		eng.Schedule(end, int32(j), func() {
			signal(t, j+1)
			signal(t+1, j)
		})
	}
	eng.Schedule(0, 0, func() { launch(0, 0) })
	makespan := eng.Run()
	if busWait != nil {
		*busWait = bus.Wait()
	}
	return makespan
}
