package core

import (
	"fmt"

	"resparc/internal/fault"
)

// faultState is the installed campaign, published through Chip.faults so
// the serving layer can flip it while classifications run on worker
// goroutines.
type faultState struct {
	camp fault.Campaign
}

// SetFaults installs a fault campaign on the chip. Only the kill switches
// matter to the transaction-level simulator (it never materializes
// conductances): a classification touching a dead mPE cannot produce a
// trustworthy result, so the batch entry points fail fast with ErrDegraded
// instead. Device-level faults are evaluated by mapping.ApplyFaults /
// mpe.MCASlot. Safe to call concurrently with classification; nil-equivalent
// (zero) campaigns can be installed with ClearFaults.
func (c *Chip) SetFaults(camp fault.Campaign) {
	c.faults.Store(&faultState{camp: camp})
}

// ClearFaults removes any installed campaign.
func (c *Chip) ClearFaults() { c.faults.Store(nil) }

// campaign returns the installed campaign (zero when none).
func (c *Chip) campaign() fault.Campaign {
	if s := c.faults.Load(); s != nil {
		return s.camp
	}
	return fault.Campaign{}
}

// ErrDegraded reports that the mapped hardware is unhealthy: at least one
// MCA allocation sits on a dead mPE, slot, or behind a dead NoC switch, so
// classifications would silently lose a layer slice. The serving layer turns
// this into a 5xx + circuit-breaker transition instead of returning wrong
// predictions.
type ErrDegraded struct {
	// DeadMCAs counts allocations on killed resources; First names one.
	DeadMCAs int
	First    fault.SlotID
}

func (e *ErrDegraded) Error() string {
	return fmt.Sprintf("core: mapping degraded: %d MCA allocation(s) on dead hardware (first: %s)",
		e.DeadMCAs, e.First)
}

// Healthy checks every mapped MCA against the installed campaign's kill
// switches and returns nil when all allocations are on live hardware, or an
// *ErrDegraded describing the damage.
func (c *Chip) Healthy() error {
	camp := c.campaign()
	if len(camp.DeadMPEs) == 0 && len(camp.DeadSlots) == 0 {
		return nil
	}
	var dead int
	var first fault.SlotID
	for li := range c.Map.Layers {
		lm := &c.Map.Layers[li]
		for ai := range lm.MCAs {
			id := fault.SlotID{MPE: lm.MCAs[ai].MPE, Slot: lm.MCAs[ai].Slot}
			if camp.SlotDead(id) {
				if dead == 0 {
					first = id
				}
				dead++
			}
		}
	}
	if dead > 0 {
		return &ErrDegraded{DeadMCAs: dead, First: first}
	}
	return nil
}
