// Digit recognition end to end: train an MLP on the synthetic digit
// dataset, convert it to a spiking network with threshold balancing,
// quantize to 4-bit memristor precision, verify accuracy survives, and
// measure the energy of classification on RESPARC vs the CMOS baseline —
// the full software flow behind the paper's MNIST results.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"resparc/internal/ann"
	"resparc/internal/bench"
	"resparc/internal/cmosbase"
	"resparc/internal/core"
	"resparc/internal/dataset"
	"resparc/internal/mapping"
	"resparc/internal/quant"
	"resparc/internal/snn"
)

func main() {
	log.SetFlags(0)

	// Train.
	train := dataset.Generate(dataset.Digits, 500, 1)
	test := dataset.Generate(dataset.Digits, 100, 2)
	rng := rand.New(rand.NewSource(3))
	mlp := ann.NewMLP(train.Shape.Size(), []int{64}, 10, rng)
	tc := ann.DefaultTrainConfig()
	tc.Epochs = 8
	tc.LR = 0.01
	fmt.Println("training 784-64-10 MLP on synthetic digits...")
	mlp.Train(train, tc)
	fmt.Printf("ANN accuracy: %.1f%%\n", 100*mlp.Evaluate(test))

	// Convert to SNN and quantize to the memristor's 4-bit precision.
	calib, _ := train.Split(100)
	net, err := snn.FromANN("digit-mlp", mlp, calib)
	check(err)
	qnet, err := quant.QuantizeNetwork(net, 4)
	check(err)
	enc := snn.NewPoissonEncoder(0.9, 5)
	fmt.Printf("SNN accuracy (full precision): %.1f%%\n", 100*snn.Evaluate(net, test, enc, 100))
	fmt.Printf("SNN accuracy (4-bit weights):  %.1f%%\n", 100*snn.Evaluate(qnet, test, snn.NewPoissonEncoder(0.9, 5), 100))

	// Map the quantized network and classify one digit on both architectures.
	m, err := mapping.Map(qnet, mapping.DefaultConfig())
	check(err)
	fmt.Printf("mapping: %d MCAs, %d mPEs, %d NeuroCell(s)\n", m.MCAs, m.MPEs, m.NCs)

	img := bench.NormalizeIntensity(test.Samples[0].Input)
	chip, err := core.New(qnet, m, core.DefaultOptions())
	check(err)
	rRes, rRep := chip.Classify(img, snn.NewPoissonEncoder(0.8, 6))
	base, err := cmosbase.New(qnet, cmosbase.DefaultOptions())
	check(err)
	cRes, _ := base.Classify(img, snn.NewPoissonEncoder(0.8, 6))

	fmt.Printf("\nclassifying one digit (true class %d): RESPARC says %d\n",
		test.Samples[0].Label, rRep.Predicted)
	fmt.Printf("RESPARC: %.3g J   CMOS: %.3g J   gain %.0fx\n",
		rRes.Energy, cRes.Energy, cRes.Energy/rRes.Energy)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
