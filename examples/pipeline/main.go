// Throughput study: Fig 7(a) shows layers pipelining inside NeuroCells —
// while layer 2 integrates timestep t, layer 1 can already process t+1.
// This example measures the sequential per-classification latency and the
// pipelined steady-state initiation interval for the MNIST benchmarks, and
// demonstrates the deterministic parallel batch API.
package main

import (
	"fmt"
	"log"
	"os"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/dataset"
	"resparc/internal/mapping"
	"resparc/internal/report"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func main() {
	log.SetFlags(0)

	t := report.NewTable("sequential vs pipelined throughput (MCA 64, 48 timesteps)",
		"Benchmark", "Latency (s)", "Sequential (cls/s)", "Pipelined (cls/s)", "Gain")
	for _, name := range []string{"mnist-mlp", "mnist-cnn"} {
		b, err := bench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		net, err := b.Build(1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := mapping.Map(net, mapping.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		opt := core.DefaultOptions()
		opt.Steps = 48
		chip, err := core.New(net, m, opt)
		if err != nil {
			log.Fatal(err)
		}

		// Classify a small batch in parallel (deterministic per-sample
		// encoders), then read the pipelining numbers off the report.
		set := dataset.Generate(b.Dataset, 3, 100)
		inputs := make([]tensor.Vec, len(set.Samples))
		for i, s := range set.Samples {
			img, err := bench.PrepareInput(s.Input, set.Shape, net.Input)
			if err != nil {
				log.Fatal(err)
			}
			inputs[i] = bench.NormalizeIntensity(img)
		}
		// Parallel batch API (deterministic per-sample encoders).
		res, _, err := chip.ClassifyBatch(inputs, func(i int) snn.Encoder {
			return snn.NewPoissonEncoder(0.8, 7+int64(i))
		}, sim.Options{Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		// Pipelining numbers come from one classification's per-layer
		// cycle profile.
		_, rep := chip.ClassifyDetailed(inputs[0], snn.NewPoissonEncoder(0.8, 7))
		seq := res.Throughput()
		pipe := rep.PipelinedThroughput(opt.Steps, opt.Params.NCCycle())
		t.Add(name, report.Sci(res.Latency), report.F(seq), report.F(pipe),
			report.F(pipe/seq))
	}
	t.Render(os.Stdout)
	fmt.Println("\nthe pipeline is bounded by the slowest layer stage and by the")
	fmt.Println("shared global bus, whose broadcast phases cannot overlap")
}
