// Technology-aware design-space exploration (paper contribution 3): for
// each memristive technology, the reliable maximum crossbar size differs —
// large arrays accumulate IR drop and device variation until their analog
// dot products are wrong. This example first demonstrates the reliability
// cliff with the electrical crossbar model, then picks the energy-optimal
// permissible MCA size per technology for an MLP and a CNN benchmark.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"resparc/internal/bench"
	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/mapping"
	"resparc/internal/report"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

func main() {
	log.SetFlags(0)

	// Part 1: why large crossbars are unreliable (§1). Measure the maximum
	// dot-product error against the ideal result as the array grows, with
	// IR drop and device variation enabled.
	fmt.Println("crossbar non-ideality vs array size (PCM, wire 2.5 ohm/segment):")
	cfgX := xbar.Config{IRDrop: true, WireResistance: 2.5, Variation: true}
	rng := rand.New(rand.NewSource(1))
	t1 := report.NewTable("", "Size", "Max |error| (weight units)")
	for _, n := range []int{16, 32, 64, 128, 256} {
		w := tensor.NewMat(n, n)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		active := bitvec.New(n)
		for i := 0; i < n; i++ {
			active.Set(i)
		}
		maxErr, err := xbar.MaxError(n, n, device.PCM, w, active, cfgX, 2)
		if err != nil {
			log.Fatal(err)
		}
		t1.Add(fmt.Sprintf("%dx%d", n, n), report.F(maxErr))
	}
	t1.Render(os.Stdout)
	fmt.Println()

	// Part 2: per-technology optimal MCA size under its reliability cap,
	// searched by the Mapper API over the cost model's modeled energy:
	// BestUniform sweeps one size for the whole network, Annealed mixes
	// sizes per layer (heterogeneous crossbars).
	sizes := []int{32, 64, 128, 256}
	t2 := report.NewTable("technology-aware optimal MCA size (modeled energy)",
		"Benchmark", "Technology", "Max size", "Best uniform", "Energy (J)", "Annealed sizes")
	for _, name := range []string{"mnist-mlp", "mnist-cnn"} {
		b, err := bench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		net, err := b.Build(1)
		if err != nil {
			log.Fatal(err)
		}
		for _, tech := range device.All() {
			mc := mapping.DefaultConfig()
			mc.MCASize = min(64, tech.MaxSize)
			mc.Tech = tech
			cons := mapping.DefaultConstraints(mc)
			cons.Sizes = sizes
			uni, err := mapping.BestUniform(net, cons)
			if err != nil {
				log.Fatal(err)
			}
			ann, err := (mapping.Annealed{Seed: 1, Iters: 120, Chains: 2}).Plan(net, cons)
			if err != nil {
				log.Fatal(err)
			}
			t2.Add(name, tech.Name, fmt.Sprintf("%d", tech.MaxSize),
				fmt.Sprintf("%d", uni.Layers[0].MCASize), report.Sci(uni.Cost.EnergyJ),
				fmt.Sprintf("%v", ann.Sizes()))
		}
	}
	t2.Render(os.Stdout)
	fmt.Println("\nMLPs want the largest array the technology permits; CNNs prefer")
	fmt.Println("an intermediate size — and a technology capped below that size")
	fmt.Println("(Spintronic) must settle for its maximum. The annealed column")
	fmt.Println("shows the per-layer mix a single uniform size cannot express —")
	fmt.Println("the mapping flexibility RESPARC's reconfigurable hierarchy provides.")
}
