// Technology-aware design-space exploration (paper contribution 3): for
// each memristive technology, the reliable maximum crossbar size differs —
// large arrays accumulate IR drop and device variation until their analog
// dot products are wrong. This example first demonstrates the reliability
// cliff with the electrical crossbar model, then picks the energy-optimal
// permissible MCA size per technology for an MLP and a CNN benchmark.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"resparc/internal/bench"
	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/experiments"
	"resparc/internal/mapping"
	"resparc/internal/report"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

func main() {
	log.SetFlags(0)

	// Part 1: why large crossbars are unreliable (§1). Measure the maximum
	// dot-product error against the ideal result as the array grows, with
	// IR drop and device variation enabled.
	fmt.Println("crossbar non-ideality vs array size (PCM, wire 2.5 ohm/segment):")
	cfgX := xbar.Config{IRDrop: true, WireResistance: 2.5, Variation: true}
	rng := rand.New(rand.NewSource(1))
	t1 := report.NewTable("", "Size", "Max |error| (weight units)")
	for _, n := range []int{16, 32, 64, 128, 256} {
		w := tensor.NewMat(n, n)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		active := bitvec.New(n)
		for i := 0; i < n; i++ {
			active.Set(i)
		}
		maxErr, err := xbar.MaxError(n, n, device.PCM, w, active, cfgX, 2)
		if err != nil {
			log.Fatal(err)
		}
		t1.Add(fmt.Sprintf("%dx%d", n, n), report.F(maxErr))
	}
	t1.Render(os.Stdout)
	fmt.Println()

	// Part 2: per-technology optimal MCA size under its reliability cap.
	cfg := experiments.DefaultConfig()
	cfg.Steps = 24
	cfg.Samples = 1
	sizes := []int{32, 64, 128, 256}
	t2 := report.NewTable("technology-aware optimal MCA size",
		"Benchmark", "Technology", "Max size", "Best size", "Energy (J)")
	for _, name := range []string{"mnist-mlp", "mnist-cnn"} {
		b, err := bench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, tech := range device.All() {
			cfgT := cfg
			cfgT.Tech = tech
			best, cost, err := mapping.BestMCASize(sizes, tech, func(size int) (float64, error) {
				res, _, _, err := experiments.RunRESPARC(b, size, cfgT, true, 0)
				if err != nil {
					return 0, err
				}
				return res.Energy, nil
			})
			if err != nil {
				log.Fatal(err)
			}
			t2.Add(name, tech.Name, fmt.Sprintf("%d", tech.MaxSize), fmt.Sprintf("%d", best), report.Sci(cost))
		}
	}
	t2.Render(os.Stdout)
	fmt.Println("\nMLPs want the largest array the technology permits; CNNs prefer")
	fmt.Println("an intermediate size — and a technology capped below that size")
	fmt.Println("(Spintronic) must settle for its maximum. This is the mapping")
	fmt.Println("flexibility RESPARC's reconfigurable hierarchy provides.")
}
