// Quickstart: build a small spiking MLP, map it onto RESPARC crossbars,
// and compare one classification against the CMOS digital baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"resparc/internal/cmosbase"
	"resparc/internal/core"
	"resparc/internal/mapping"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// 1. Describe a 64-32-10 spiking MLP with random balanced weights.
	rng := rand.New(rand.NewSource(42))
	l1, err := snn.NewDense("hidden", 64, 32, randWeights(rng, 32, 64), 0.6)
	check(err)
	l2, err := snn.NewDense("output", 32, 10, randWeights(rng, 10, 32), 0.4)
	check(err)
	net, err := snn.NewNetwork("quickstart", tensor.Shape3{H: 8, W: 8, C: 1}, l1, l2)
	check(err)
	fmt.Printf("network: %d neurons, %d synapses\n", net.HiddenNeurons(), net.Synapses())

	// 2. Map it onto 32x32 Ag-Si crossbars (4 per mPE, 16 mPEs per NeuroCell).
	cfg := mapping.DefaultConfig()
	cfg.MCASize = 32
	m, err := mapping.Map(net, cfg)
	check(err)
	fmt.Printf("mapping: %d MCAs on %d mPEs in %d NeuroCell(s), utilization %.0f%%\n",
		m.MCAs, m.MPEs, m.NCs, 100*m.TotalUtilization())

	// 3. Classify one rate-encoded input on RESPARC.
	input := tensor.NewVec(64)
	for i := range input {
		input[i] = rng.Float64()
	}
	chip, err := core.New(net, m, core.DefaultOptions())
	check(err)
	rRes, rRep := chip.ClassifyDetailed(input, snn.NewPoissonEncoder(0.8, 7))
	fmt.Printf("RESPARC: class %d, %.3g J, %.3g s (neuron %.0f%% / crossbar %.0f%% / peripherals %.0f%%)\n",
		rRep.Predicted, rRes.Energy, rRes.Latency,
		100*rRep.Energy.Neuron/rRes.Energy,
		100*rRep.Energy.Crossbar/rRes.Energy,
		100*rRep.Energy.Peripherals/rRes.Energy)

	// 4. Same classification on the optimized CMOS digital baseline.
	base, err := cmosbase.New(net, cmosbase.DefaultOptions())
	check(err)
	cRes, cRep := base.ClassifyDetailed(input, snn.NewPoissonEncoder(0.8, 7))
	fmt.Printf("CMOS:    class %d, %.3g J, %.3g s\n", cRep.Predicted, cRes.Energy, cRes.Latency)
	fmt.Printf("RESPARC advantage: %.0fx energy, %.0fx speed\n",
		cRes.Energy/rRes.Energy, cRes.Latency/rRes.Latency)
}

func randWeights(rng *rand.Rand, rows, cols int) *tensor.Mat {
	w := tensor.NewMat(rows, cols)
	for i := range w.Data {
		if rng.Float64() < 0.7 {
			w.Data[i] = rng.Float64() * 0.1
		} else {
			w.Data[i] = -rng.Float64() * 0.05
		}
	}
	return w
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
