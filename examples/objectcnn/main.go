// Object-classification CNN mapping study: map the CIFAR-10-class CNN
// benchmark (231k neurons, 5.5M synapses) onto RESPARC at several crossbar
// sizes and watch the §3.1.1/§5.2 utilization story play out — sparse
// convolutional connectivity fills small arrays well, wastes large ones,
// and the total energy bottoms out at an intermediate size (RESPARC-64 in
// Fig 12c).
package main

import (
	"fmt"
	"log"
	"os"

	"resparc/internal/bench"
	"resparc/internal/experiments"
	"resparc/internal/report"
)

func main() {
	log.SetFlags(0)

	b, err := bench.ByName("cifar-cnn")
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.DefaultConfig()
	cfg.Steps = 24
	cfg.Samples = 1

	t := report.NewTable("cifar-cnn across MCA sizes",
		"MCA", "MCAs", "mPEs", "NCs", "Utilization", "Neuron (J)", "Crossbar (J)", "Peripherals (J)", "Total (J)")
	type row struct {
		size  int
		total float64
	}
	var rows []row
	for _, size := range []int{32, 64, 128} {
		res, rep, m, err := experiments.RunRESPARC(b, size, cfg, true, 0)
		if err != nil {
			log.Fatal(err)
		}
		t.Add(fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", m.MCAs), fmt.Sprintf("%d", m.MPEs), fmt.Sprintf("%d", m.NCs),
			report.Pct(m.TotalUtilization()),
			report.Sci(rep.Energy.Neuron), report.Sci(rep.Energy.Crossbar), report.Sci(rep.Energy.Peripherals),
			report.Sci(res.Energy))
		rows = append(rows, row{size, res.Energy})
	}
	t.Render(os.Stdout)

	best := rows[0]
	for _, r := range rows[1:] {
		if r.total < best.total {
			best = r
		}
	}
	fmt.Printf("\nmost energy-efficient crossbar size for this CNN: %d\n", best.size)
	fmt.Println("(larger arrays cut peripheral cost per synapse, but sparse conv")
	fmt.Println(" connectivity leaves more cross-points idle — and idle cells on a")
	fmt.Println(" driven row still conduct, so crossbar energy grows with size)")
}
