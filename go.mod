module resparc

go 1.22
