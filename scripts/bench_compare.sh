#!/usr/bin/env bash
# Regenerate the evaluation-pipeline benchmarks and compare against the
# committed BENCH_RESULTS.json. resparc-bench -fig bench prints the fresh
# measurements, a delta table against the previous file, and then merges the
# fresh entries into the file (matching names are replaced, history is kept).
#
# Benchmarks are timing-sensitive — on a loaded machine the numbers drift —
# so this script never fails the build: ci.sh runs it warn-only. Pass any
# resparc-bench flags through, e.g. -quick for a fast smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/resparc-bench -fig bench "$@"
