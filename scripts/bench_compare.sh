#!/usr/bin/env bash
# Regenerate the evaluation-pipeline benchmarks and compare against the
# committed BENCH_RESULTS.json. resparc-bench -fig bench prints the fresh
# measurements, a delta table against the previous file, and then merges the
# fresh entries into the file (matching names are replaced, history is kept).
#
# A benchmark that regresses more than 10% against its previous entry fails
# the script (and with it scripts/ci.sh). Benchmarks are timing-sensitive —
# on a loaded machine the numbers drift — so an explicit escape hatch exists:
#
#   ALLOW_BENCH_REGRESS=1 ./scripts/bench_compare.sh
#
# downgrades regressions to the printed delta table only. Pass any
# resparc-bench flags through, e.g. -quick for a fast smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."

check=(-check)
if [ "${ALLOW_BENCH_REGRESS:-0}" = "1" ]; then
    echo "ALLOW_BENCH_REGRESS=1: regressions reported but not fatal" >&2
    check=()
fi

go run ./cmd/resparc-bench -fig bench "${check[@]}" "$@"

# Fleet SLO rows (fleet/<model>/<tier>): modeled in virtual time, so the
# same -seed reproduces them bit-identically. The delta table against the
# previous rows is informational for now — attainment shifts when the
# committed scenario changes, so it warns rather than fails.
echo "== fleet SLO rows (delta is warn-only)"
go run ./cmd/resparc-bench -fig fleet "$@"

# Event-engine rows (event/latency, event/walltime, event/shard, event/noc):
# the modeled cycle rows are pure functions of the -seed; the walltime rows
# measure the simulator itself. Cycle deltas only move when the timing model
# changes, so the table is warn-only — reviewers eyeball it in the PR.
echo "== event-engine rows (delta is warn-only)"
go run ./cmd/resparc-bench -fig event "$@"

# Lifetime self-healing recovery (FAULT_RESULTS.json "lifetime" section):
# the campaign is a pure function of the -seed, and the recovery table shows
# how much of the end-of-life agreement loss each repair policy wins back.
# Warn-only for the same reason as the fleet rows — the numbers only move
# when the repair ladder or the committed campaign parameters change, and a
# reviewer should eyeball the delta rather than have CI guess a threshold.
echo "== lifetime repair recovery (delta is warn-only)"
go run ./cmd/resparc-bench -fig lifetime "$@"

# Mapper-quality rows (mapper/<bench>/<greedy|annealed>): placements and the
# energy/EDP measurements are pure functions of the -seed. The delta table is
# warn-only — EDP moves when the cost model or the annealer changes, and the
# greedy-vs-annealed gap in the main table is the number a reviewer checks.
echo "== mapper-quality rows (delta is warn-only)"
go run ./cmd/resparc-bench -fig mapper "$@"
