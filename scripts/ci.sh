#!/usr/bin/env bash
# The full pre-PR hygiene recipe (see ROADMAP.md): tier-1 verify plus vet,
# formatting, and a race pass over the concurrent evaluation and serving
# paths. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race (concurrent paths)"
go test -race \
    ./internal/parallel/ \
    ./internal/snn/ \
    ./internal/event/ \
    ./internal/neurocell/ \
    ./internal/core/ \
    ./internal/cmosbase/ \
    ./internal/fault/ \
    ./internal/mapping/ \
    ./internal/repair/ \
    ./internal/serve/ \
    ./internal/sim/ \
    ./internal/shard/ \
    ./internal/lb/ \
    ./internal/loadgen/

# The sim.Backend contract is the seam every consumer (serve, experiments,
# cmd tools) programs against; an accidental signature change must show up as
# a diff against the committed surface, not as a downstream compile error in
# a later PR.
echo "== API surface check (internal/sim)"
go doc -all resparc/internal/sim > /tmp/sim_api_surface.txt
if ! diff -u scripts/sim_api_surface.golden /tmp/sim_api_surface.txt; then
    echo "internal/sim API surface changed; review the diff and refresh with:" >&2
    echo "  go doc -all resparc/internal/sim > scripts/sim_api_surface.golden" >&2
    exit 1
fi

# The mapping.Mapper/Placement contract is the other pinned seam: the
# Placement JSON artifact is consumed by core, shard, serve and resparc-map,
# so its Go surface (and by extension the schema's shape) is golden-checked
# the same way.
echo "== API surface check (internal/mapping)"
go doc -all resparc/internal/mapping > /tmp/mapping_api_surface.txt
if ! diff -u scripts/mapping_api_surface.golden /tmp/mapping_api_surface.txt; then
    echo "internal/mapping API surface changed; review the diff and refresh with:" >&2
    echo "  go doc -all resparc/internal/mapping > scripts/mapping_api_surface.golden" >&2
    exit 1
fi

echo "== fuzz smoke (FuzzFaultMap, 5s)"
go test -run Fuzz -fuzz=FuzzFaultMap -fuzztime=5s ./internal/fault/

# Perf regression check — fatal: a committed benchmark that regresses more
# than 10% against its previous entry fails the build. Timings drift with
# machine load, so a known-noisy run can be waved through explicitly with
# ALLOW_BENCH_REGRESS=1 (bench_compare.sh then only prints the delta table).
echo "== bench compare"
./scripts/bench_compare.sh -quick

echo "ci: all green"
