#!/usr/bin/env bash
# The full pre-PR hygiene recipe (see ROADMAP.md): tier-1 verify plus vet,
# formatting, and a race pass over the concurrent evaluation and serving
# paths. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race (concurrent paths)"
go test -race \
    ./internal/parallel/ \
    ./internal/snn/ \
    ./internal/core/ \
    ./internal/cmosbase/ \
    ./internal/fault/ \
    ./internal/mapping/ \
    ./internal/serve/

echo "== fuzz smoke (FuzzFaultMap, 5s)"
go test -run Fuzz -fuzz=FuzzFaultMap -fuzztime=5s ./internal/fault/

# Perf regression check — warn-only: timings drift with machine load, so a
# slowdown in the delta table is a prompt to investigate, not a CI failure.
echo "== bench compare (warn-only)"
if ! ./scripts/bench_compare.sh -quick; then
    echo "warning: bench_compare.sh failed (non-fatal)" >&2
fi

echo "ci: all green"
