// Command resparc-map prints the mapping report for one benchmark at one
// crossbar size: per-layer MCA counts, time-multiplexing degrees,
// utilizations and placements, plus the technology-aware best-size search
// (paper contribution 3).
//
// Usage:
//
//	resparc-map [-bench mnist-cnn] [-mca 64] [-tech Ag-Si] [-best]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"resparc/internal/bench"
	"resparc/internal/device"
	"resparc/internal/experiments"
	"resparc/internal/mapping"
	"resparc/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-map: ")
	name := flag.String("bench", "mnist-cnn", "benchmark name (see resparc-sim)")
	mca := flag.Int("mca", 64, "MCA (crossbar) size")
	techName := flag.String("tech", "Ag-Si", "memristive technology: PCM|Ag-Si|Spintronic")
	best := flag.Bool("best", false, "also search the energy-optimal MCA size for the technology")
	floorplan := flag.Bool("floorplan", false, "render the NeuroCell floorplan (first 8 NCs)")
	flag.Parse()

	tech, err := techByName(*techName)
	if err != nil {
		log.Fatal(err)
	}
	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	net, err := b.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mapping.DefaultConfig()
	cfg.MCASize = *mca
	cfg.Tech = tech
	m, err := mapping.Map(net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s mapped on RESPARC-%d (%s, max reliable size %d)\n\n", b.Name, *mca, tech.Name, tech.MaxSize)
	t := report.NewTable("Per-layer mapping", "Layer", "Kind", "Neurons", "Synapses", "MCAs", "Groups", "Mux", "Util", "mPEs", "NCs", "Input via")
	for li, lm := range m.Layers {
		t.Add(lm.Layer.Name, lm.Layer.Kind.String(),
			fmt.Sprintf("%d", lm.Layer.OutSize()), fmt.Sprintf("%d", lm.Layer.Synapses()),
			fmt.Sprintf("%d", len(lm.MCAs)), fmt.Sprintf("%d", lm.Groups), fmt.Sprintf("%d", lm.MuxDegree),
			report.Pct(lm.Utilization),
			fmt.Sprintf("%d-%d", lm.MPEFirst, lm.MPELast),
			fmt.Sprintf("%d-%d", lm.NCFirst, lm.NCLast),
			m.TransportOf(li).String())
	}
	t.Render(os.Stdout)
	fmt.Printf("\nTotals: %d MCAs, %d mPEs, %d NeuroCells, utilization %s\n",
		m.MCAs, m.MPEs, m.NCs, report.Pct(m.TotalUtilization()))
	pe, pt := m.ProgramCost()
	fmt.Printf("One-off configuration cost (%s write-verify): %s J in %s s\n",
		tech.Name, report.Sci(pe), report.Sci(pt))

	if *floorplan {
		fmt.Println()
		fmt.Print(m.Floorplan(8))
	}

	if *best {
		cfgE := experiments.DefaultConfig()
		cfgE.Tech = tech
		cfgE.Steps = 24
		cfgE.Samples = 1
		sizes := []int{32, 64, 128, 256}
		bestSize, cost, err := mapping.BestMCASize(sizes, tech, func(size int) (float64, error) {
			res, _, _, err := experiments.RunRESPARC(b, size, cfgE, true, 0)
			if err != nil {
				return 0, err
			}
			return res.Energy, nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nTechnology-aware best MCA size on %s (candidates %v, those above %d skipped): %d (%.3e J/classification)\n",
			tech.Name, sizes, tech.MaxSize, bestSize, cost)
	}
}

func techByName(name string) (device.Technology, error) {
	for _, t := range device.All() {
		if strings.EqualFold(t.Name, name) {
			return t, nil
		}
	}
	return device.Technology{}, fmt.Errorf("unknown technology %q (want PCM, Ag-Si or Spintronic)", name)
}
