// Command resparc-map plans, inspects and compares RESPARC placements.
//
// Subcommands:
//
//	resparc-map plan [-bench mnist-cnn] [-mapper annealed] [-tech Ag-Si]
//	                 [-mca 64] [-sizes 32,64,128] [-shards 1] [-steps 16]
//	                 [-seed 1] [-iters 400] [-chains 4] [-o plan.json]
//	    runs a mapper (greedy, annealed, or uniform — the best single-size
//	    sweep) and writes the versioned Placement JSON artifact.
//
//	resparc-map show plan.json
//	    prints the per-layer placement table and the modeled cost breakdown.
//
//	resparc-map diff a.json b.json
//	    compares two placements of the same network: per-layer size and
//	    alignment changes plus the energy/latency/traffic deltas.
//
// Invoked without a subcommand it keeps the legacy report: the per-layer
// mapping of one benchmark at one crossbar size plus the technology-aware
// best-size search (paper contribution 3).
//
//	resparc-map [-bench mnist-cnn] [-mca 64] [-tech Ag-Si] [-best]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"resparc/internal/bench"
	"resparc/internal/device"
	"resparc/internal/experiments"
	"resparc/internal/mapping"
	"resparc/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-map: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "plan":
			runPlan(os.Args[2:])
			return
		case "show":
			runShow(os.Args[2:])
			return
		case "diff":
			runDiff(os.Args[2:])
			return
		}
	}
	runLegacy()
}

// runPlan maps a benchmark with the chosen mapper and emits the Placement
// artifact other tools (core, shard, resparc-serve) consume.
func runPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	name := fs.String("bench", "mnist-cnn", "benchmark name (see resparc-sim)")
	mapper := fs.String("mapper", "annealed", "mapper: greedy, annealed, or uniform (best single-size sweep)")
	techName := fs.String("tech", "Ag-Si", "memristive technology: PCM|Ag-Si|Spintronic")
	mca := fs.Int("mca", 64, "baseline MCA size the greedy start uses")
	sizesFlag := fs.String("sizes", "", "comma-separated candidate MCA sizes (empty: 32,64,128 clipped to the technology)")
	shards := fs.Int("shards", 1, "model a multi-chip pipeline with this many shards; cut points go into the artifact")
	steps := fs.Int("steps", 0, "probe timesteps for the cost model (0: default)")
	seed := fs.Int64("seed", 1, "annealer seed (same seed, same artifact)")
	iters := fs.Int("iters", 0, "annealing iterations per chain (0: default)")
	chains := fs.Int("chains", 0, "parallel annealing chains (0: default)")
	out := fs.String("o", "", "output file (empty: stdout)")
	fs.Parse(args)

	tech, err := techByName(*techName)
	if err != nil {
		log.Fatal(err)
	}
	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	net, err := b.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mapping.DefaultConfig()
	cfg.MCASize = *mca
	cfg.Tech = tech
	cons := mapping.DefaultConstraints(cfg)
	cons.Shards = *shards
	cons.Seed = *seed
	if *steps > 0 {
		cons.Steps = *steps
	}
	if *sizesFlag != "" {
		sizes, err := parseSizes(*sizesFlag)
		if err != nil {
			log.Fatal(err)
		}
		cons.Sizes = sizes
	}

	var p *mapping.Placement
	switch *mapper {
	case "greedy":
		p, err = (mapping.Greedy{}).Plan(net, cons)
	case "annealed":
		p, err = (mapping.Annealed{Seed: *seed, Iters: *iters, Chains: *chains}).Plan(net, cons)
	case "uniform":
		p, err = mapping.BestUniform(net, cons)
	default:
		log.Fatalf("unknown mapper %q (want greedy, annealed or uniform)", *mapper)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *out == "" {
		if err := mapping.WritePlacement(os.Stdout, p); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := mapping.WritePlacementFile(*out, p); err != nil {
		log.Fatal(err)
	}
	log.Printf("%s: %s placement of %s written (objective %.4f, %.3e J, %.3e s)",
		*out, p.Mapper, p.Network, p.Cost.Objective, p.Cost.EnergyJ, p.Cost.LatencyS)
}

// runShow renders one placement artifact.
func runShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: resparc-map show <placement.json>")
	}
	p, err := mapping.ReadPlacementFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s placement of %s (%s, schema v%d, seed %d)\n\n",
		p.Mapper, p.Network, p.Tech, p.SchemaVersion, p.Seed)
	t := report.NewTable("Per-layer placement", "Layer", "MCA size", "NC-aligned", "MCAs", "mPEs", "Util", "Input via")
	for _, lp := range p.Layers {
		t.Add(lp.Name, fmt.Sprintf("%d", lp.MCASize), boolMark(lp.NCAlign),
			fmt.Sprintf("%d", lp.MCAs), fmt.Sprintf("%d", lp.MPEs),
			report.Pct(lp.Utilization), lp.Transport)
	}
	t.Render(os.Stdout)
	if len(p.ShardCuts) > 0 {
		fmt.Printf("\nShard cuts (layer starts): %v (%d chips)\n", p.ShardCuts, len(p.ShardCuts)+1)
	}
	fmt.Println()
	printCost("Modeled cost", p.Cost)
}

// runDiff compares two placements of the same network.
func runDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		log.Fatal("usage: resparc-map diff <a.json> <b.json>")
	}
	a, err := mapping.ReadPlacementFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	b, err := mapping.ReadPlacementFile(fs.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	if a.Network != b.Network {
		log.Fatalf("placements map different networks: %q vs %q", a.Network, b.Network)
	}
	if len(a.Layers) != len(b.Layers) {
		log.Fatalf("layer counts differ: %d vs %d", len(a.Layers), len(b.Layers))
	}
	fmt.Printf("%s: %s (%s) vs %s (%s)\n\n", a.Network, fs.Arg(0), a.Mapper, fs.Arg(1), b.Mapper)
	t := report.NewTable("Per-layer differences", "Layer", "Size", "", "Aligned", "", "MCAs", "")
	changed := 0
	for i, la := range a.Layers {
		lb := b.Layers[i]
		if la.MCASize == lb.MCASize && la.NCAlign == lb.NCAlign && la.MCAs == lb.MCAs {
			continue
		}
		changed++
		t.Add(la.Name,
			fmt.Sprintf("%d", la.MCASize), fmt.Sprintf("%d", lb.MCASize),
			boolMark(la.NCAlign), boolMark(lb.NCAlign),
			fmt.Sprintf("%d", la.MCAs), fmt.Sprintf("%d", lb.MCAs))
	}
	if changed == 0 {
		fmt.Println("Layer placements identical.")
	} else {
		t.Render(os.Stdout)
	}
	if fmt.Sprint(a.ShardCuts) != fmt.Sprint(b.ShardCuts) {
		fmt.Printf("\nShard cuts: %v vs %v\n", a.ShardCuts, b.ShardCuts)
	}
	fmt.Println()
	ct := report.NewTable("Cost comparison", "Metric", fs.Arg(0), fs.Arg(1), "Delta")
	row := func(name string, va, vb float64, format func(float64) string) {
		delta := "-"
		if va != 0 {
			delta = fmt.Sprintf("%+.2f%%", 100*(vb-va)/va)
		}
		ct.Add(name, format(va), format(vb), delta)
	}
	sci := func(v float64) string { return report.Sci(v) }
	num := func(v float64) string { return fmt.Sprintf("%.4f", v) }
	count := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	row("Energy (J)", a.Cost.EnergyJ, b.Cost.EnergyJ, sci)
	row("Latency (s)", a.Cost.LatencyS, b.Cost.LatencyS, sci)
	row("Link flits", float64(a.Cost.LinkFlits), float64(b.Cost.LinkFlits), count)
	row("Link energy (J)", a.Cost.LinkEnergyJ, b.Cost.LinkEnergyJ, sci)
	row("Objective", a.Cost.Objective, b.Cost.Objective, num)
	row("mPEs", float64(a.Cost.MPEs), float64(b.Cost.MPEs), count)
	row("NeuroCells", float64(a.Cost.NCs), float64(b.Cost.NCs), count)
	ct.Render(os.Stdout)
}

func printCost(title string, c mapping.CostBreakdown) {
	t := report.NewTable(title, "Metric", "Value")
	t.Add("Energy (J)", report.Sci(c.EnergyJ))
	t.Add("Latency (s)", report.Sci(c.LatencyS))
	t.Add("Link flits", fmt.Sprintf("%d", c.LinkFlits))
	t.Add("Link energy (J)", report.Sci(c.LinkEnergyJ))
	t.Add("Objective", fmt.Sprintf("%.4f", c.Objective))
	t.Add("mPEs", fmt.Sprintf("%d", c.MPEs))
	t.Add("NeuroCells", fmt.Sprintf("%d", c.NCs))
	t.Render(os.Stdout)
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes in %q", s)
	}
	return out, nil
}

// runLegacy is the original flat-flag mapping report.
func runLegacy() {
	name := flag.String("bench", "mnist-cnn", "benchmark name (see resparc-sim)")
	mca := flag.Int("mca", 64, "MCA (crossbar) size")
	techName := flag.String("tech", "Ag-Si", "memristive technology: PCM|Ag-Si|Spintronic")
	best := flag.Bool("best", false, "also search the energy-optimal MCA size for the technology")
	floorplan := flag.Bool("floorplan", false, "render the NeuroCell floorplan (first 8 NCs)")
	flag.Parse()

	tech, err := techByName(*techName)
	if err != nil {
		log.Fatal(err)
	}
	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	net, err := b.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mapping.DefaultConfig()
	cfg.MCASize = *mca
	cfg.Tech = tech
	m, err := mapping.Map(net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s mapped on RESPARC-%d (%s, max reliable size %d)\n\n", b.Name, *mca, tech.Name, tech.MaxSize)
	t := report.NewTable("Per-layer mapping", "Layer", "Kind", "Neurons", "Synapses", "MCAs", "Groups", "Mux", "Util", "mPEs", "NCs", "Input via")
	for li, lm := range m.Layers {
		t.Add(lm.Layer.Name, lm.Layer.Kind.String(),
			fmt.Sprintf("%d", lm.Layer.OutSize()), fmt.Sprintf("%d", lm.Layer.Synapses()),
			fmt.Sprintf("%d", len(lm.MCAs)), fmt.Sprintf("%d", lm.Groups), fmt.Sprintf("%d", lm.MuxDegree),
			report.Pct(lm.Utilization),
			fmt.Sprintf("%d-%d", lm.MPEFirst, lm.MPELast),
			fmt.Sprintf("%d-%d", lm.NCFirst, lm.NCLast),
			m.TransportOf(li).String())
	}
	t.Render(os.Stdout)
	fmt.Printf("\nTotals: %d MCAs, %d mPEs, %d NeuroCells, utilization %s\n",
		m.MCAs, m.MPEs, m.NCs, report.Pct(m.TotalUtilization()))
	pe, pt := m.ProgramCost()
	fmt.Printf("One-off configuration cost (%s write-verify): %s J in %s s\n",
		tech.Name, report.Sci(pe), report.Sci(pt))

	if *floorplan {
		fmt.Println()
		fmt.Print(m.Floorplan(8))
	}

	if *best {
		cfgE := experiments.DefaultConfig()
		cfgE.Tech = tech
		cfgE.Steps = 24
		cfgE.Samples = 1
		sizes := []int{32, 64, 128, 256}
		bestSize, cost, err := mapping.BestMCASize(sizes, tech, func(size int) (float64, error) {
			res, _, _, err := experiments.RunRESPARC(b, size, cfgE, true, 0)
			if err != nil {
				return 0, err
			}
			return res.Energy, nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nTechnology-aware best MCA size on %s (candidates %v, those above %d skipped): %d (%.3e J/classification)\n",
			tech.Name, sizes, tech.MaxSize, bestSize, cost)
	}
}

func techByName(name string) (device.Technology, error) {
	for _, t := range device.All() {
		if strings.EqualFold(t.Name, name) {
			return t, nil
		}
	}
	return device.Technology{}, fmt.Errorf("unknown technology %q (want PCM, Ag-Si or Spintronic)", name)
}
