// Command resparc-train runs the full software pipeline for one synthetic
// dataset: train an ANN, convert it to a spiking network (weight/threshold
// balancing), quantize to memristor precision, and report ANN/SNN accuracy
// across precisions — the per-dataset slice of Fig 14(a).
//
// Usage:
//
//	resparc-train [-dataset digits] [-hidden 64] [-epochs 10] [-train 500] [-test 100] [-steps 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"resparc/internal/ann"
	"resparc/internal/dataset"
	"resparc/internal/quant"
	"resparc/internal/report"
	"resparc/internal/snn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-train: ")
	dsName := flag.String("dataset", "digits", "dataset: digits|streetdigits|objects")
	hidden := flag.Int("hidden", 64, "hidden layer width")
	epochs := flag.Int("epochs", 10, "training epochs")
	trainN := flag.Int("train", 500, "training samples")
	testN := flag.Int("test", 100, "test samples")
	steps := flag.Int("steps", 100, "SNN timesteps per classification")
	seed := flag.Int64("seed", 1, "PRNG seed")
	dump := flag.String("dump", "", "directory to export the first 10 test images as PGM/PPM")
	save := flag.String("save", "", "write the converted SNN to this file (gob)")
	load := flag.String("load", "", "skip training and load a previously saved SNN")
	flag.Parse()

	var kind dataset.Kind
	switch *dsName {
	case "digits":
		kind = dataset.Digits
	case "streetdigits":
		kind = dataset.StreetDigits
	case "objects":
		kind = dataset.Objects
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}

	train := dataset.Generate(kind, *trainN, *seed)
	test := dataset.Generate(kind, *testN, *seed+1)
	if *dump != "" {
		if err := dumpImages(*dump, test); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote sample images to %s\n", *dump)
	}

	var net *snn.Network
	annAcc := 1.0
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		net, err = snn.ReadNetwork(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %q (%d neurons, %d synapses) from %s\n",
			net.Name, net.HiddenNeurons(), net.Synapses(), *load)
	} else {
		rng := rand.New(rand.NewSource(*seed + 2))
		mlp := ann.NewMLP(train.Shape.Size(), []int{*hidden}, train.Classes, rng)
		tc := ann.DefaultTrainConfig()
		tc.Epochs = *epochs
		tc.LR = 0.01
		tc.Seed = *seed
		fmt.Printf("training %d-%d-%d MLP on %s (%d samples, %d epochs)...\n",
			train.Shape.Size(), *hidden, train.Classes, kind, *trainN, *epochs)
		loss := mlp.Train(train, tc)
		annAcc = mlp.Evaluate(test)
		fmt.Printf("final epoch loss %.4f, ANN test accuracy %s\n\n", loss, report.Pct(annAcc))

		calib, _ := train.Split(minInt(100, *trainN))
		var err error
		net, err = snn.FromANN(kind.String(), mlp, calib)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		err = snn.WriteNetwork(f, net)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved converted SNN to %s\n", *save)
	}

	t := report.NewTable("SNN accuracy vs weight precision (Fig 14a slice)",
		"Precision", "Accuracy", "Relative to ANN")
	for _, bits := range []int{1, 2, 4, 8} {
		q, err := quant.QuantizeNetwork(net, bits)
		if err != nil {
			log.Fatal(err)
		}
		acc := snn.Evaluate(q, test, snn.NewPoissonEncoder(0.9, *seed+5), *steps)
		t.Add(fmt.Sprintf("%d-bit", bits), report.Pct(acc), report.F(acc/annAcc))
	}
	accFull := snn.Evaluate(net, test, snn.NewPoissonEncoder(0.9, *seed+5), *steps)
	t.Add("full", report.Pct(accFull), report.F(accFull/annAcc))
	t.Render(os.Stdout)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// dumpImages writes the first samples as PGM (grayscale) or PPM (RGB).
func dumpImages(dir string, set *dataset.Set) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := minInt(10, len(set.Samples))
	for i := 0; i < n; i++ {
		s := set.Samples[i]
		ext := "pgm"
		if set.Shape.C == 3 {
			ext = "ppm"
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%02d-label%d.%s", set.Name, i, s.Label, ext))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if set.Shape.C == 3 {
			err = dataset.WritePPM(f, s.Input, set.Shape)
		} else {
			err = dataset.WritePGM(f, s.Input, set.Shape)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
