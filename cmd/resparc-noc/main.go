// Command resparc-noc explores the NeuroCell programmable-switch fabric
// (Fig 6) at packet granularity: pick a traffic pattern, packet count and
// cell dimension, and compare the simulated cycles against the ideal
// parallel-transfer bound the architecture model uses.
//
// Usage:
//
//	resparc-noc [-dim 4] [-packets 72] [-pattern neighbor|random|hotspot|all]
//	            [-engine stepped|event] [-queuecap N] [-sweep] [-seed 1]
//
// -engine event runs the discrete-event fabric: one flit per switch per
// cycle out of bounded input FIFOs with credit-based backpressure, so
// congestion (and the Wait column) emerges from the flow control instead of
// the stepped model's unbounded queues. -sweep additionally ramps the
// offered load and reports how delivered cycles-per-packet degrade per
// pattern — flat for neighbor traffic, super-linear at the hotspot.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"resparc/internal/neurocell"
	"resparc/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-noc: ")
	dim := flag.Int("dim", 4, "NeuroCell mPE grid dimension (4 = the Fig 8 cell)")
	packets := flag.Int("packets", 72, "spike packets injected at cycle 0")
	pattern := flag.String("pattern", "all", "traffic pattern: neighbor, random, hotspot, all")
	engine := flag.String("engine", "stepped", "fabric engine: stepped (unbounded queues) or event (bounded FIFOs, backpressure)")
	queueCap := flag.Int("queuecap", 0, "event engine: per-switch input-FIFO depth (<= 0: neurocell.DefaultQueueCap)")
	sweep := flag.Bool("sweep", false, "ramp offered load and report delivered cycles per pattern (event engine)")
	seed := flag.Int64("seed", 1, "PRNG seed for random traffic")
	flag.Parse()
	if *engine != "stepped" && *engine != "event" {
		log.Fatalf("unknown engine %q (want stepped or event)", *engine)
	}

	sw, err := neurocell.NewSwitchNet(*dim)
	if err != nil {
		log.Fatal(err)
	}
	mpes := *dim * *dim
	// Each generator draws from a fresh PRNG so a pattern's traffic depends
	// only on (-seed, packet count), not on which patterns ran before it.
	gen := map[string]func(int) []neurocell.Transfer{
		"neighbor": func(n int) []neurocell.Transfer {
			out := make([]neurocell.Transfer, n)
			for i := range out {
				src := i % mpes
				out[i] = neurocell.Transfer{SrcMPE: src, DstMPE: (src + 1) % mpes}
			}
			return out
		},
		"random": func(n int) []neurocell.Transfer {
			rng := rand.New(rand.NewSource(*seed))
			out := make([]neurocell.Transfer, n)
			for i := range out {
				out[i] = neurocell.Transfer{SrcMPE: rng.Intn(mpes), DstMPE: rng.Intn(mpes)}
			}
			return out
		},
		"hotspot": func(n int) []neurocell.Transfer {
			out := make([]neurocell.Transfer, n)
			for i := range out {
				out[i] = neurocell.Transfer{SrcMPE: i % (mpes - 1), DstMPE: mpes - 1}
			}
			return out
		},
	}
	simulate := func(tr []neurocell.Transfer) (neurocell.SwitchStats, error) {
		if *engine == "event" {
			return sw.SimulateEvent(tr, neurocell.EventOptions{QueueCap: *queueCap})
		}
		return sw.Simulate(tr)
	}
	names := []string{"neighbor", "random", "hotspot"}
	if *pattern != "all" {
		if _, ok := gen[*pattern]; !ok {
			log.Fatalf("unknown pattern %q", *pattern)
		}
		names = []string{*pattern}
	}

	fmt.Printf("%dx%d NeuroCell, %d switches, %d packets, %s engine\n\n",
		*dim, *dim, sw.Switches(), *packets, *engine)
	t := report.NewTable("switch-fabric simulation",
		"Pattern", "Ideal cycles", "Simulated", "Slowdown", "Hops", "Max queue", "Wait")
	for _, name := range names {
		st, err := simulate(gen[name](*packets))
		if err != nil {
			log.Fatal(err)
		}
		ideal := sw.IdealCycles(*packets)
		t.Add(name, fmt.Sprintf("%d", ideal), fmt.Sprintf("%d", st.Cycles),
			report.F(float64(st.Cycles)/float64(ideal)),
			fmt.Sprintf("%d", st.Hops), fmt.Sprintf("%d", st.MaxQueue),
			fmt.Sprintf("%d", st.WaitCycles))
	}
	t.Render(os.Stdout)

	if *sweep {
		// Offered load ramp: inject multiples of the cell's port count and
		// watch cycles-per-packet. Uniform traffic stays near flat; the
		// hotspot's single ejection port serializes, so its curve bends.
		fmt.Println()
		loads := []int{mpes / 2, mpes, 2 * mpes, 4 * mpes, 8 * mpes}
		st := report.NewTable("congestion sweep (offered load vs delivered cycles)",
			"Pattern", "Packets", "Ideal", "Cycles", "Cyc/pkt", "Wait")
		for _, name := range names {
			for _, n := range loads {
				s, err := simulate(gen[name](n))
				if err != nil {
					log.Fatal(err)
				}
				st.Add(name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", sw.IdealCycles(n)),
					fmt.Sprintf("%d", s.Cycles),
					report.F(float64(s.Cycles)/float64(n)),
					fmt.Sprintf("%d", s.WaitCycles))
			}
		}
		st.Render(os.Stdout)
	}

	fmt.Println("\nload balance (forwards per switch, last pattern):")
	st, err := simulate(gen[names[len(names)-1]](*packets))
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range st.Forwards {
		fmt.Printf("  switch %d: %d\n", i, f)
	}
}
