// Command resparc-noc explores the NeuroCell programmable-switch fabric
// (Fig 6) at packet granularity: pick a traffic pattern, packet count and
// cell dimension, and compare the simulated cycles against the ideal
// parallel-transfer bound the architecture model uses.
//
// Usage:
//
//	resparc-noc [-dim 4] [-packets 72] [-pattern neighbor|random|hotspot|all] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"resparc/internal/neurocell"
	"resparc/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-noc: ")
	dim := flag.Int("dim", 4, "NeuroCell mPE grid dimension (4 = the Fig 8 cell)")
	packets := flag.Int("packets", 72, "spike packets injected at cycle 0")
	pattern := flag.String("pattern", "all", "traffic pattern: neighbor, random, hotspot, all")
	seed := flag.Int64("seed", 1, "PRNG seed for random traffic")
	flag.Parse()

	sw, err := neurocell.NewSwitchNet(*dim)
	if err != nil {
		log.Fatal(err)
	}
	mpes := *dim * *dim
	rng := rand.New(rand.NewSource(*seed))
	gen := map[string]func(int) []neurocell.Transfer{
		"neighbor": func(n int) []neurocell.Transfer {
			out := make([]neurocell.Transfer, n)
			for i := range out {
				src := i % mpes
				out[i] = neurocell.Transfer{SrcMPE: src, DstMPE: (src + 1) % mpes}
			}
			return out
		},
		"random": func(n int) []neurocell.Transfer {
			out := make([]neurocell.Transfer, n)
			for i := range out {
				out[i] = neurocell.Transfer{SrcMPE: rng.Intn(mpes), DstMPE: rng.Intn(mpes)}
			}
			return out
		},
		"hotspot": func(n int) []neurocell.Transfer {
			out := make([]neurocell.Transfer, n)
			for i := range out {
				out[i] = neurocell.Transfer{SrcMPE: i % (mpes - 1), DstMPE: mpes - 1}
			}
			return out
		},
	}
	names := []string{"neighbor", "random", "hotspot"}
	if *pattern != "all" {
		if _, ok := gen[*pattern]; !ok {
			log.Fatalf("unknown pattern %q", *pattern)
		}
		names = []string{*pattern}
	}

	fmt.Printf("%dx%d NeuroCell, %d switches, %d packets\n\n", *dim, *dim, sw.Switches(), *packets)
	t := report.NewTable("switch-fabric simulation",
		"Pattern", "Ideal cycles", "Simulated", "Slowdown", "Hops", "Max queue")
	for _, name := range names {
		st, err := sw.Simulate(gen[name](*packets))
		if err != nil {
			log.Fatal(err)
		}
		ideal := sw.IdealCycles(*packets)
		t.Add(name, fmt.Sprintf("%d", ideal), fmt.Sprintf("%d", st.Cycles),
			report.F(float64(st.Cycles)/float64(ideal)),
			fmt.Sprintf("%d", st.Hops), fmt.Sprintf("%d", st.MaxQueue))
	}
	t.Render(os.Stdout)
	fmt.Println("\nload balance (forwards per switch, last pattern):")
	st, _ := sw.Simulate(gen[names[len(names)-1]](*packets))
	for i, f := range st.Forwards {
		fmt.Printf("  switch %d: %d\n", i, f)
	}
}
