// Command resparc-bench regenerates the paper's tables and figures, and
// benchmarks the evaluation pipeline itself.
//
// Usage:
//
//	resparc-bench [-fig all|8|9|10|11|12|13|14a|14b|ablations|checklist|bench|shard|fleet|event|mapper]
//	              [-quick] [-out FILE] [-workers N] [-batch B] [-json FILE]
//	              [-blocked=false] [-check] [-cpuprofile FILE] [-memprofile FILE]
//
// -fig bench measures the hot evaluation paths (functional SNN evaluator
// and chip simulation, serial vs parallel) and writes the machine-readable
// BENCH_RESULTS.json used to track the perf trajectory across PRs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"resparc/internal/experiments"
	"resparc/internal/perf"
	"resparc/internal/repair"
	"resparc/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-bench: ")
	fig := flag.String("fig", "all", "figure to regenerate: all, 8, 9, 10, 11, 12, 13, 14a, 14b, ablations, checklist, sensitivity, bench, faults, lifetime, shard, fleet, event, mapper")
	quick := flag.Bool("quick", false, "reduced fidelity (fewer steps/samples) for smoke runs")
	seed := flag.Int64("seed", 1, "experiment seed; same seed, same results (byte-identical JSON for -fig faults)")
	outPath := flag.String("out", "", "also write the output to this file")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (<= 0: one per CPU); results are identical for any value")
	jsonPath := flag.String("json", "BENCH_RESULTS.json", "where -fig bench writes its machine-readable results")
	faultJSON := flag.String("faultjson", "FAULT_RESULTS.json", "where -fig faults and -fig lifetime merge their machine-readable results")
	blocked := flag.Bool("blocked", true, "use the blocked layer-major SNN runner (bit-identical; -blocked=false selects the step-major reference)")
	blockSize := flag.Int("blocksize", 0, "temporal block length of the blocked runner (<= 0: snn.DefaultBlockSize)")
	batch := flag.Int("batch", 0, "batch-major group size inside the simulators (<= 1: per-image evaluation; bit-identical)")
	check := flag.Bool("check", false, "with -fig bench: exit non-zero when a benchmark regresses more than 10% vs its previous entry")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
		// Quick-fidelity timings are not comparable to full-fidelity ones,
		// so never merge them into the committed BENCH_RESULTS.json unless
		// the caller picked the file explicitly.
		jsonExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "json" {
				jsonExplicit = true
			}
		})
		if !jsonExplicit {
			*jsonPath = "BENCH_RESULTS.quick.json"
		}
		faultExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "faultjson" {
				faultExplicit = true
			}
		})
		if !faultExplicit {
			*faultJSON = "FAULT_RESULTS.quick.json"
		}
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Stepped = !*blocked
	cfg.BlockSize = *blockSize
	cfg.Batch = *batch
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("fig %s: %v", name, err)
		}
	}
	run("8", func() error {
		a, b := experiments.Fig8()
		a.Render(out)
		fmt.Fprintln(out)
		b.Render(out)
		fmt.Fprintln(out)
		return nil
	})
	run("9", func() error {
		a, b := experiments.Fig9()
		a.Render(out)
		fmt.Fprintln(out)
		b.Render(out)
		fmt.Fprintln(out)
		return nil
	})
	run("10", func() error {
		_, t, err := experiments.Fig10(cfg)
		if err != nil {
			return err
		}
		t.Render(out)
		fmt.Fprintln(out)
		return nil
	})
	run("11", func() error {
		r, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		for _, t := range r.Tables() {
			t.Render(out)
			fmt.Fprintln(out)
		}
		for _, t := range r.NormalizedTables() {
			t.Render(out)
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "CNN avg: %.0fx energy, %.0fx speedup (paper: 12x, 60x)\n", r.CNNAvgGain, r.CNNAvgSpeedup)
		fmt.Fprintf(out, "MLP avg: %.0fx energy, %.0fx speedup (paper: 513x, 382x)\n\n", r.MLPAvgGain, r.MLPAvgSpeedup)
		return nil
	})
	run("12", func() error {
		r, err := experiments.Fig12(cfg)
		if err != nil {
			return err
		}
		for _, t := range r.Tables() {
			t.Render(out)
			fmt.Fprintln(out)
		}
		for _, t := range r.NormalizedTables() {
			t.Render(out)
			fmt.Fprintln(out)
		}
		return nil
	})
	run("13", func() error {
		r, err := experiments.Fig13(cfg)
		if err != nil {
			return err
		}
		for _, t := range r.Tables() {
			t.Render(out)
			fmt.Fprintln(out)
		}
		return nil
	})
	run("14a", func() error {
		fc := experiments.DefaultFig14a()
		if *quick {
			fc.TrainSamples, fc.TestSamples, fc.Epochs, fc.Steps = 300, 50, 6, 60
		}
		_, t, err := experiments.Fig14a(fc)
		if err != nil {
			return err
		}
		t.Render(out)
		fmt.Fprintln(out)
		return nil
	})
	run("14b", func() error {
		_, t, err := experiments.Fig14b(cfg)
		if err != nil {
			return err
		}
		t.Render(out)
		fmt.Fprintln(out)
		return nil
	})
	// The checklist re-runs every driver, so it only fires when asked for
	// explicitly (not under -fig all).
	if *fig == "checklist" {
		_, t, err := experiments.Checklist(cfg)
		if err != nil {
			log.Fatalf("checklist: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
	}
	// The pipeline benchmark suite is explicit-only (testing.Benchmark runs
	// each measurement for about a second); it also writes BENCH_RESULTS.json.
	if *fig == "bench" {
		entries, t, err := experiments.PerfSuite(cfg)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
		// Merge into the existing history (matching names are replaced) and
		// report the deltas against the previous measurements.
		prev, err := perf.ReadBenchFile(*jsonPath)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		if dt := benchDeltaTable(prev.Entries, entries); dt != nil {
			dt.Render(out)
			fmt.Fprintln(out)
		}
		merged := perf.MergeEntries(prev.Entries, entries)
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := perf.WriteBenchJSON(f, perf.NewBenchReport(merged)); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "bench results written to %s\n", *jsonPath)
		if *check {
			if regs := benchRegressions(prev.Entries, entries, 0.10); len(regs) > 0 {
				for _, r := range regs {
					log.Print(r)
				}
				log.Fatalf("bench: %d benchmark(s) regressed more than 10%% vs the previous %s (set ALLOW_BENCH_REGRESS=1 to bypass in CI)", len(regs), *jsonPath)
			}
		}
	}
	// The multi-chip pipeline sweep is explicit-only (it simulates three
	// benchmarks twice). Its entries are modeled, not wall-clock, so the same
	// -seed reproduces them bit-identically; merging preserves the existing
	// file's header (timestamp, git revision) so a same-seed rerun leaves
	// BENCH_RESULTS.json byte-identical.
	if *fig == "shard" {
		entries, t, err := experiments.FigShard(cfg)
		if err != nil {
			log.Fatalf("shard: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
		prev, err := perf.ReadBenchFile(*jsonPath)
		if err != nil {
			log.Fatalf("shard: %v", err)
		}
		rep := perf.NewBenchReport(perf.MergeEntries(prev.Entries, entries))
		if prev.Timestamp != "" {
			rep.Timestamp = prev.Timestamp
			rep.GitRevision = prev.GitRevision
			rep.GoVersion = prev.GoVersion
			rep.GOMAXPROCS = prev.GOMAXPROCS
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := perf.WriteBenchJSON(f, rep); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "shard results merged into %s\n", *jsonPath)
	}
	// The fleet-serving scenario is explicit-only. Like the shard sweep its
	// rows are modeled (virtual-time discrete-event fleet, see
	// internal/loadgen), so the same -seed reproduces them bit-identically
	// and merging preserves the existing file's header.
	if *fig == "fleet" {
		entries, t, err := experiments.FigFleet(cfg)
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
		prev, err := perf.ReadBenchFile(*jsonPath)
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		if dt := fleetDeltaTable(prev.Entries, entries); dt != nil {
			dt.Render(out)
			fmt.Fprintln(out)
		}
		rep := perf.NewBenchReport(perf.MergeEntries(prev.Entries, entries))
		if prev.Timestamp != "" {
			rep.Timestamp = prev.Timestamp
			rep.GitRevision = prev.GitRevision
			rep.GoVersion = prev.GoVersion
			rep.GOMAXPROCS = prev.GOMAXPROCS
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := perf.WriteBenchJSON(f, rep); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "fleet results merged into %s\n", *jsonPath)
	}
	// The event-engine comparison is explicit-only (it simulates every
	// benchmark under both accounting paths and times the simulator itself
	// with testing.Benchmark). Its modeled rows (event/latency, event/shard,
	// event/noc) are pure functions of the -seed; only the event/walltime rows
	// carry real time. Merging preserves the existing file's header.
	if *fig == "event" {
		entries, t, err := experiments.FigEvent(cfg)
		if err != nil {
			log.Fatalf("event: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
		prev, err := perf.ReadBenchFile(*jsonPath)
		if err != nil {
			log.Fatalf("event: %v", err)
		}
		if dt := eventDeltaTable(prev.Entries, entries); dt != nil {
			dt.Render(out)
			fmt.Fprintln(out)
		}
		rep := perf.NewBenchReport(perf.MergeEntries(prev.Entries, entries))
		if prev.Timestamp != "" {
			rep.Timestamp = prev.Timestamp
			rep.GitRevision = prev.GitRevision
			rep.GoVersion = prev.GoVersion
			rep.GOMAXPROCS = prev.GOMAXPROCS
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := perf.WriteBenchJSON(f, rep); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "event results merged into %s\n", *jsonPath)
	}
	// The mapper-quality comparison is explicit-only (it anneals and
	// re-simulates every benchmark twice). Its rows are pure functions of the
	// -seed: the placements are deterministic and the measured energy/EDP come
	// from the modeled accountant, not wall-clock. Merging preserves the
	// existing file's header, so same-seed reruns keep BENCH_RESULTS.json
	// byte-identical.
	if *fig == "mapper" {
		entries, t, err := experiments.FigMapper(cfg)
		if err != nil {
			log.Fatalf("mapper: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
		prev, err := perf.ReadBenchFile(*jsonPath)
		if err != nil {
			log.Fatalf("mapper: %v", err)
		}
		if dt := mapperDeltaTable(prev.Entries, entries); dt != nil {
			dt.Render(out)
			fmt.Fprintln(out)
		}
		rep := perf.NewBenchReport(perf.MergeEntries(prev.Entries, entries))
		if prev.Timestamp != "" {
			rep.Timestamp = prev.Timestamp
			rep.GitRevision = prev.GitRevision
			rep.GoVersion = prev.GoVersion
			rep.GOMAXPROCS = prev.GOMAXPROCS
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := perf.WriteBenchJSON(f, rep); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "mapper results merged into %s\n", *jsonPath)
	}
	// The accuracy-under-fault sweep is explicit-only (it re-simulates every
	// benchmark 13 times); it merges its rows into the machine-readable
	// FAULT_RESULTS.json header-preservingly. The rows contain no timestamps
	// or host state: the same -seed reproduces a committed file
	// byte-identically.
	if *fig == "faults" {
		fc := experiments.DefaultFaultsConfig()
		if *quick {
			fc = experiments.QuickFaultsConfig()
		}
		// Steps and Samples stay the sweep's own (the agreement metric needs
		// enough timesteps for output spikes); everything else follows the
		// shared flags.
		fc.Seed = *seed
		fc.Workers = *workers
		fc.Stepped = !*blocked
		fc.BlockSize = *blockSize
		r, t, err := experiments.FigFaults(fc)
		if err != nil {
			log.Fatalf("faults: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
		fresh := experiments.NewFaultReport()
		fresh.Faults = r
		mergeFaultJSON(*faultJSON, fresh)
		fmt.Fprintf(out, "fault sweep merged into %s\n", *faultJSON)
	}
	// The accuracy-over-lifetime campaign (-fig lifetime) ages every
	// benchmark to end of life under the self-healing policies and merges
	// its rows into the same FAULT_RESULTS.json.
	if *fig == "lifetime" {
		lc := experiments.DefaultLifetimeConfig()
		if *quick {
			lc = experiments.QuickLifetimeConfig()
		}
		lc.Seed = *seed
		lc.Workers = *workers
		lc.Stepped = !*blocked
		lc.BlockSize = *blockSize
		r, t, err := experiments.FigLifetime(lc)
		if err != nil {
			log.Fatalf("lifetime: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
		if rt := lifetimeRecoveryTable(r); rt != nil {
			rt.Render(out)
			fmt.Fprintln(out)
		}
		fresh := experiments.NewFaultReport()
		fresh.Lifetime = r
		mergeFaultJSON(*faultJSON, fresh)
		fmt.Fprintf(out, "lifetime campaign merged into %s\n", *faultJSON)
	}
	// Calibration sensitivity is explicit-only too (21 paired simulations).
	if *fig == "sensitivity" {
		_, t, err := experiments.Sensitivity(cfg, 1.5)
		if err != nil {
			log.Fatalf("sensitivity: %v", err)
		}
		t.Render(out)
		fmt.Fprintln(out)
	}
	run("ablations", func() error {
		if _, t, err := experiments.AblationPacketWidth(cfg); err != nil {
			return err
		} else {
			t.Render(out)
			fmt.Fprintln(out)
		}
		isCfg := cfg
		if isCfg.Steps > 16 {
			isCfg.Steps = 16 // the naive mapping is slow to simulate
		}
		if _, t, err := experiments.AblationInputSharing(isCfg); err != nil {
			return err
		} else {
			t.Render(out)
			fmt.Fprintln(out)
		}
		if _, t, err := experiments.AblationSwitchContention(cfg.Seed); err != nil {
			return err
		} else {
			t.Render(out)
			fmt.Fprintln(out)
		}
		if _, t, err := experiments.AblationColumnGating(isCfg); err != nil {
			return err
		} else {
			t.Render(out)
			fmt.Fprintln(out)
		}
		if _, t, err := experiments.AblationEarlyExit(isCfg); err != nil {
			return err
		} else {
			t.Render(out)
			fmt.Fprintln(out)
		}
		if _, t, err := experiments.AblationNonIdealityAccuracy(400, 60, 80, cfg.Seed); err != nil {
			return err
		} else {
			t.Render(out)
			fmt.Fprintln(out)
		}
		return nil
	})
}

// benchRegressions lists the fresh entries that run more than tol slower
// (by ns/op) than the previous entry of the same name. Entries without a
// previous measurement never regress.
func benchRegressions(prev, fresh []perf.BenchEntry, tol float64) []string {
	var regs []string
	for _, e := range fresh {
		old, ok := perf.FindEntry(prev, e.Name)
		if !ok || old.NsPerOp <= 0 || e.NsPerOp <= 0 {
			continue
		}
		if e.NsPerOp > old.NsPerOp*(1+tol) {
			regs = append(regs, fmt.Sprintf("regression: %s %.0f -> %.0f ns/op (%.1f%% slower)",
				e.Name, old.NsPerOp, e.NsPerOp, 100*(e.NsPerOp/old.NsPerOp-1)))
		}
	}
	return regs
}

// benchDeltaTable compares fresh measurements against the previous entries
// of the same name and renders the throughput ratios; nil when no previous
// measurement overlaps (first run).
func benchDeltaTable(prev, fresh []perf.BenchEntry) *report.Table {
	t := report.NewTable("Delta vs previous BENCH_RESULTS.json",
		"Benchmark", "prev ns/op", "new ns/op", "speedup")
	rows := 0
	for _, e := range fresh {
		old, ok := perf.FindEntry(prev, e.Name)
		if !ok {
			continue
		}
		t.Add(e.Name, fmt.Sprintf("%.0f", old.NsPerOp), fmt.Sprintf("%.0f", e.NsPerOp),
			fmt.Sprintf("%.2fx", perf.Speedup(old, e)))
		rows++
	}
	if rows == 0 {
		return nil
	}
	return t
}

// mergeFaultJSON merges a fresh fault/lifetime report into the results file
// header-preservingly and writes it back.
func mergeFaultJSON(path string, fresh experiments.FaultReport) {
	prev, err := experiments.ReadFaultFile(path)
	if err != nil {
		log.Fatalf("fault JSON: %v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.WriteFaultJSON(f, experiments.MergeFaultReports(prev, fresh)); err != nil {
		f.Close()
		log.Fatalf("fault JSON: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// lifetimeRecoveryTable summarizes, per benchmark, the agreement the
// no-repair baseline loses by end of life and the fraction each repair
// policy recovers; nil when no benchmark lost anything.
func lifetimeRecoveryTable(r *experiments.LifetimeResult) *report.Table {
	t := report.NewTable("Lifetime recovery (fraction of EOL agreement loss recovered)",
		"Benchmark", "Lost", "Refresh", "Full")
	seen := map[string]bool{}
	rows := 0
	for _, p := range r.Points {
		if seen[p.Bench] {
			continue
		}
		seen[p.Bench] = true
		lost, fullFrac, ok := r.RecoveredAt(p.Bench, repair.PolicyFull.String())
		if !ok {
			t.Add(p.Bench, "0.000", "-", "-")
			continue
		}
		_, refreshFrac, _ := r.RecoveredAt(p.Bench, repair.PolicyRefresh.String())
		t.Add(p.Bench, fmt.Sprintf("%.3f", lost),
			fmt.Sprintf("%.0f%%", 100*refreshFrac), fmt.Sprintf("%.0f%%", 100*fullFrac))
		rows++
	}
	if rows == 0 {
		return nil
	}
	return t
}

// eventDeltaTable compares fresh event-engine rows against the previous
// entries of the same name; nil when no previous event row overlaps. The
// comparison is informational (warn-only): modeled cycles shift only when the
// model changes, which is exactly what the delta surfaces.
func eventDeltaTable(prev, fresh []perf.BenchEntry) *report.Table {
	t := report.NewTable("Event-engine delta vs previous BENCH_RESULTS.json",
		"Row", "prev cycles", "new cycles", "prev wait", "new wait")
	rows := 0
	for _, e := range fresh {
		old, ok := perf.FindEntry(prev, e.Name)
		if !ok || old.ModelCycles == 0 {
			continue
		}
		t.Add(e.Name, fmt.Sprintf("%d", old.ModelCycles), fmt.Sprintf("%d", e.ModelCycles),
			fmt.Sprintf("%d", old.WaitCycles), fmt.Sprintf("%d", e.WaitCycles))
		rows++
	}
	if rows == 0 {
		return nil
	}
	return t
}

// mapperDeltaTable compares fresh mapper-quality rows against the previous
// entries of the same name; nil when no previous mapper row overlaps. The
// comparison is informational (warn-only): EDP shifts when the cost model or
// the annealer changes, which is exactly what the delta surfaces.
func mapperDeltaTable(prev, fresh []perf.BenchEntry) *report.Table {
	t := report.NewTable("Mapper-quality delta vs previous BENCH_RESULTS.json",
		"Row", "prev EDP", "new EDP", "prev energy J", "new energy J")
	rows := 0
	for _, e := range fresh {
		old, ok := perf.FindEntry(prev, e.Name)
		if !ok || old.Objective == 0 {
			continue
		}
		t.Add(e.Name, report.Sci(old.Objective), report.Sci(e.Objective),
			report.Sci(old.EnergyJ), report.Sci(e.EnergyJ))
		rows++
	}
	if rows == 0 {
		return nil
	}
	return t
}

// fleetDeltaTable compares fresh fleet SLO rows against the previous
// entries of the same name; nil when no previous fleet row overlaps. The
// comparison is informational (warn-only): SLO attainment shifts with the
// scenario, so CI reports the delta without failing on it.
func fleetDeltaTable(prev, fresh []perf.BenchEntry) *report.Table {
	t := report.NewTable("Fleet SLO delta vs previous BENCH_RESULTS.json",
		"Row", "prev p99 ms", "new p99 ms", "prev attainment", "new attainment")
	rows := 0
	for _, e := range fresh {
		old, ok := perf.FindEntry(prev, e.Name)
		if !ok || !old.IsFleet() {
			continue
		}
		t.Add(e.Name, fmt.Sprintf("%.1f", old.P99Ms), fmt.Sprintf("%.1f", e.P99Ms),
			fmt.Sprintf("%.3f", old.SLOAttainment), fmt.Sprintf("%.3f", e.SLOAttainment))
		rows++
	}
	if rows == 0 {
		return nil
	}
	return t
}
