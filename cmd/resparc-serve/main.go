// Command resparc-serve runs the HTTP inference service: the six Fig 10
// benchmarks (or any snn.WriteNetwork file) pre-mapped onto RESPARC and the
// CMOS baseline, served with dynamic micro-batching over the shared
// simulator pool.
//
// Usage:
//
//	resparc-serve [-addr :8080] [-backend resparc|cmos] [-max-batch 8]
//	              [-max-wait 2ms] [-queue 64] [-workers 0] [-sim-batch 0]
//	              [-models mnist-mlp,...] [-model-files a.gob,...]
//	              [-placement plan.json,...]
//	              [-steps 48] [-seed 1] [-mca-size 64] [-blocked=false] [-pprof]
//	              [-repair full] [-repair-interval 30s] [-fault-seed 1]
//	              [-eol 1e6] [-wear-fraction 0.002] [-drift-sigma 0.12]
//	              [-age-per-inference 1]
//
// Endpoints: POST /v1/classify, GET /v1/models, GET /metrics, GET /healthz.
//
// -repair enables self-healing serving: every model's crossbars age with
// the served inference count under a seeded lifetime fault model, and a
// background scheduler probes them with canary inputs and climbs the
// repair ladder (program-verify refresh, delta-rule tuning, spare
// remapping) when degradation shows. During a pass the replica answers
// "repairing" on /readyz so a balancer routes around the repair window.
//
// -load runs the self-benchmark instead of listening: it measures serial
// single-image throughput as the reference, then fires concurrent requests
// at an in-process server and reports the achieved batched images/sec,
// merging both into BENCH_RESULTS.json (-json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"resparc/internal/fault"
	"resparc/internal/mapping"
	"resparc/internal/perf"
	"resparc/internal/repair"
	"resparc/internal/serve"
	"resparc/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	backend := flag.String("backend", "resparc", "default backend for requests that do not name one: resparc or cmos")
	maxBatch := flag.Int("max-batch", 8, "micro-batch flush size")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "how long a non-full batch waits for company")
	queue := flag.Int("queue", 64, "bounded queue size per (model, backend); a full queue answers 429")
	workers := flag.Int("workers", 0, "simulator worker-pool size per batch (<= 0: one per CPU)")
	simBatch := flag.Int("sim-batch", 0, "batch-major group size inside the simulator (<= 1: per-image evaluation; bit-identical)")
	models := flag.String("models", "", "comma-separated Fig 10 benchmark names to serve (empty: all six)")
	modelFiles := flag.String("model-files", "", "comma-separated snn.WriteNetwork files to serve in addition to -models")
	placements := flag.String("placement", "", "comma-separated resparc-map placement files; a served network matching a placement's network name is realized from the artifact (per-layer MCA sizes, alignment, shard cuts)")
	steps := flag.Int("steps", 0, "SNN timesteps per classification (0: the paper default)")
	seed := flag.Int64("seed", 0, "base encoder seed (0: the paper default)")
	mcaSize := flag.Int("mca-size", 0, "crossbar dimension for the RESPARC mapping (0: the paper default)")
	blocked := flag.Bool("blocked", true, "use the blocked layer-major SNN runner (bit-identical; -blocked=false selects the step-major reference)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline; expiry answers 504")
	brThreshold := flag.Int("breaker-threshold", 3, "consecutive batch failures that open a (model, backend) circuit")
	brCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "how long an open circuit answers 503 + Retry-After before probing")
	repairPolicy := flag.String("repair", "", "enable self-healing with this policy: none (age only), refresh, or full (empty: lifetime aging and repair off; serving is bit-identical to earlier builds)")
	repairInterval := flag.Duration("repair-interval", 30*time.Second, "cadence of background repair passes; each pass quiesces its model (readyz answers \"repairing\")")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the lifetime fault campaign (drift, wear, fabrication defects)")
	eol := flag.Float64("eol", 1e6, "end-of-life inference count of the lifetime model")
	wearFraction := flag.Float64("wear-fraction", 0.002, "per-device probability of a wear-out stuck-at failure by EOL")
	driftSigma := flag.Float64("drift-sigma", 0.12, "lognormal conductance drift scale (grows with inference count)")
	driftTau := flag.Float64("drift-tau", 3e5, "inference count where drift starts accumulating (sigma grows per decade past it)")
	agePerInference := flag.Float64("age-per-inference", 1, "deployment age per served crossbar inference; raise for accelerated aging")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ (opt-in)")
	load := flag.Bool("load", false, "run the self-benchmark instead of listening")
	loadImages := flag.Int("load-images", 64, "images per measurement in -load mode")
	loadConc := flag.Int("load-concurrency", 16, "concurrent clients in -load mode")
	jsonPath := flag.String("json", "BENCH_RESULTS.json", "where -load merges its measurements")
	flag.Parse()

	defBackend, err := serve.ParseBackend(*backend, serve.BackendRESPARC)
	if err != nil {
		log.Fatal(err)
	}

	rcfg := serve.DefaultRegistryConfig()
	if *steps > 0 {
		rcfg.Steps = *steps
	}
	if *seed != 0 {
		rcfg.Seed = *seed
	}
	if *mcaSize > 0 {
		rcfg.MCASize = *mcaSize
	}
	rcfg.Stepped = !*blocked
	for _, path := range splitList(*placements) {
		p, err := mapping.ReadPlacementFile(path)
		if err != nil {
			log.Fatal(err)
		}
		if rcfg.Placements == nil {
			rcfg.Placements = make(map[string]*mapping.Placement)
		}
		if prev := rcfg.Placements[p.Network]; prev != nil {
			log.Fatalf("placement %s: network %q already has a placement", path, p.Network)
		}
		rcfg.Placements[p.Network] = p
		log.Printf("placement %s: %s via %s mapper, sizes %v", path, p.Network, p.Mapper, p.Sizes())
	}
	reg, err := serve.NewRegistry(rcfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loading models (steps=%d, mca=%d)...", rcfg.Steps, rcfg.MCASize)
	buildStart := time.Now()
	if err := reg.LoadBenchmarks(splitList(*models)...); err != nil {
		log.Fatal(err)
	}
	for _, path := range splitList(*modelFiles) {
		if _, err := reg.LoadNetworkFile(path); err != nil {
			log.Fatal(err)
		}
	}
	for _, info := range reg.Info() {
		log.Printf("  %-12s %d layers, %d synapses, %d MCAs, utilization %.2f",
			info.Name, info.Layers, info.Synapses, info.MCAs, info.Utilization)
	}
	log.Printf("registry ready in %v", time.Since(buildStart).Round(time.Millisecond))

	cfg := serve.Config{
		Registry:         reg,
		DefaultBackend:   defBackend,
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		QueueSize:        *queue,
		Workers:          *workers,
		SimBatch:         *simBatch,
		RequestTimeout:   *reqTimeout,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *repairPolicy != "" {
		pol, err := repair.ParsePolicy(*repairPolicy)
		if err != nil {
			log.Fatal(err)
		}
		camp := fault.NewCampaign(*faultSeed, rcfg.Tech)
		camp.DriftSigma = *driftSigma
		camp.DriftTau = *driftTau
		err = srv.StartRepair(serve.RepairConfig{
			Life:            fault.Lifetime{Camp: camp, EOL: *eol, WearFraction: *wearFraction},
			Policy:          pol,
			Interval:        *repairInterval,
			AgePerInference: *agePerInference,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("self-healing on: policy %s, interval %v, EOL %g, wear %g, drift sigma %g",
			pol, *repairInterval, *eol, *wearFraction, *driftSigma)
	}

	if *load {
		if err := runLoad(srv, reg, defBackend, *loadImages, *loadConc, *jsonPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	handler := srv.Handler()
	if *pprofOn {
		// The profiling endpoints expose internals (and hold the CPU while
		// sampling), so they stay off unless explicitly requested.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (default backend %s, batch %d, wait %v, queue %d)",
		*addr, defBackend, cfg.MaxBatch, cfg.MaxWait, cfg.QueueSize)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting connections, then drain every
	// admitted batch before exiting.
	log.Print("shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	log.Print("drained")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// runLoad is the -load self-benchmark: serial single-image classification is
// the reference; the batched measurement fires concurrent requests at an
// in-process HTTP server so the full path (JSON, queueing, micro-batching,
// the parallel worker pool) is under test.
func runLoad(srv *serve.Server, reg *serve.Registry, backend serve.Backend, images, concurrency int, jsonPath string) error {
	if images < 1 || concurrency < 1 {
		return fmt.Errorf("load: need at least one image and one client")
	}
	model := reg.Models()[0]
	n := model.Net.Input.Size()
	inputs := make([]tensor.Vec, images)
	for i := range inputs {
		v := make(tensor.Vec, n)
		for j := range v {
			v[j] = float64((i+3)*(j+7)%97) / 96
		}
		inputs[i] = v
	}

	// Serial reference: one image at a time, one worker — the throughput a
	// client gets without batching.
	serialStart := time.Now()
	for i, in := range inputs {
		if _, _, err := model.ClassifyEach(backend, []tensor.Vec{in}, []int64{int64(i)}, 1, 0); err != nil {
			return fmt.Errorf("load: serial reference: %w", err)
		}
	}
	serialDur := time.Since(serialStart)
	serialIPS := float64(images) / serialDur.Seconds()
	log.Printf("serial reference: %d images in %v (%.2f images/sec)", images, serialDur.Round(time.Millisecond), serialIPS)

	// Batched service: concurrent clients against the real HTTP stack.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String() + "/v1/classify"

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		maxBatch int
	)
	jobs := make(chan int)
	batchStart := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				size, err := classifyOnce(url, model.Name, string(backend), inputs[i], int64(i))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if size > maxBatch {
					maxBatch = size
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < images; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	batchDur := time.Since(batchStart)
	if firstErr != nil {
		return fmt.Errorf("load: batched run: %w", firstErr)
	}
	batchIPS := float64(images) / batchDur.Seconds()
	log.Printf("batched service: %d images in %v (%.2f images/sec, largest batch %d, %d clients)",
		images, batchDur.Round(time.Millisecond), batchIPS, maxBatch, concurrency)
	log.Printf("batching speedup: %.2fx over serial", batchIPS/serialIPS)
	if batchIPS < serialIPS {
		log.Printf("WARNING: batched throughput below the serial reference")
	}

	snap := srv.Metrics().Snapshot()
	log.Printf("metrics: %d requests, %d batches, %d batched images, p50 %.1f ms, p99 %.1f ms",
		snap.Requests, snap.Batches, snap.BatchImages, snap.P50*1e3, snap.P99*1e3)
	if snap.BatchImages != int64(images) {
		return fmt.Errorf("load: metrics count %d batched images, sent %d", snap.BatchImages, images)
	}

	existing, err := perf.ReadBenchFile(jsonPath)
	if err != nil {
		return err
	}
	fresh := []perf.BenchEntry{
		{
			Name:         "serve/" + model.Name + "/" + string(backend) + "/serial",
			NsPerOp:      float64(serialDur.Nanoseconds()) / float64(images),
			ImagesPerSec: serialIPS,
			Iterations:   images,
			Workers:      1,
		},
		{
			Name:         "serve/" + model.Name + "/" + string(backend) + "/batched",
			NsPerOp:      float64(batchDur.Nanoseconds()) / float64(images),
			ImagesPerSec: batchIPS,
			Iterations:   images,
			Workers:      concurrency,
		},
	}
	report := perf.NewBenchReport(perf.MergeEntries(existing.Entries, fresh))
	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if err := perf.WriteBenchJSON(f, report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	log.Printf("load results merged into %s", jsonPath)
	return nil
}

// classifyOnce posts one image and returns the batch size its response rode
// in on.
func classifyOnce(url, model, backend string, input tensor.Vec, seed int64) (int, error) {
	body, err := json.Marshal(serve.ClassifyRequest{Model: model, Backend: backend, Input: input, Seed: seed})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	var cr serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return 0, err
	}
	return cr.BatchSize, nil
}
