// Command resparc-lb runs the fleet front tier: a load balancer that routes
// POST /v1/classify over a set of resparc-serve replicas.
//
// Usage:
//
//	resparc-lb [-addr :8090] -replicas http://host1:8080,http://host2:8080
//	           [-vnodes 64] [-poll 1s] [-max-inflight 256] [-batch-share 0.5]
//	           [-tenant-rate 0] [-tenant-burst 0] [-retries 2]
//	           [-default-backend resparc] [-shed-backend cmos]
//
// Routing is consistent hashing by model; replica health comes from polling
// each replica's /readyz (liveness vs readiness split in resparc-serve).
// When every replica's RESPARC circuits are open the balancer sheds
// unpinned requests to the CMOS baseline backend instead of failing.
//
// Endpoints: POST /v1/classify, GET /v1/replicas, GET /metrics,
// GET /healthz, GET /readyz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resparc/internal/lb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-lb: ")

	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required); name=url pairs also accepted")
	vnodes := flag.Int("vnodes", lb.DefaultVNodes, "virtual nodes per replica on the consistent-hash ring")
	poll := flag.Duration("poll", time.Second, "replica /readyz polling interval")
	maxInFlight := flag.Int("max-inflight", 256, "fleet-wide concurrency budget (admission)")
	batchShare := flag.Float64("batch-share", 0.5, "fraction of the budget the batch tier may hold")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant quota, requests/sec (0: unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant quota burst (0: same as -tenant-rate)")
	retries := flag.Int("retries", 2, "max retries of upstream 429/503/504 answers")
	defBackend := flag.String("default-backend", "resparc", "backend for requests that do not pin one")
	shedBackend := flag.String("shed-backend", "cmos", "fallback backend when the default is out fleet-wide (empty disables shedding)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request upstream timeout")
	flag.Parse()

	members, err := parseReplicas(*replicas)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lb.DefaultConfig(members)
	cfg.VNodes = *vnodes
	cfg.PollInterval = *poll
	cfg.MaxInFlight = *maxInFlight
	cfg.BatchShare = *batchShare
	cfg.MaxRetries = *retries
	cfg.DefaultBackend = *defBackend
	cfg.ShedBackend = *shedBackend
	cfg.Client = &http.Client{Timeout: *timeout}
	if *tenantRate > 0 {
		burst := *tenantBurst
		if burst <= 0 {
			burst = *tenantRate
		}
		cfg.TenantQuota = lb.Quota{Rate: *tenantRate, Burst: burst}
	}
	balancer, err := lb.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: balancer.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("balancing %d replica(s) on %s (default backend %s, shed to %s, poll %v)",
		len(members), *addr, cfg.DefaultBackend, orNone(cfg.ShedBackend), cfg.PollInterval)
	for _, r := range members {
		log.Printf("  %-12s %s", r.Name, r.URL)
	}
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	balancer.Close()
	log.Print("stopped")
}

// parseReplicas accepts "url,url,..." (names derived from the hosts) or
// "name=url,name=url,..." forms.
func parseReplicas(s string) ([]lb.Replica, error) {
	var out []lb.Replica
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, named := strings.Cut(part, "=")
		if !named {
			raw = part
			name = ""
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("replica %q: want a base URL like http://host:8080", part)
		}
		if name == "" {
			name = u.Host
		}
		out = append(out, lb.Replica{Name: name, URL: strings.TrimRight(raw, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replicas: pass -replicas http://host1:8080,http://host2:8080")
	}
	return out, nil
}

func orNone(s string) string {
	if s == "" {
		return "(disabled)"
	}
	return s
}
