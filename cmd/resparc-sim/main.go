// Command resparc-sim runs one Fig 10 benchmark on RESPARC and the CMOS
// baseline and prints the per-classification comparison.
//
// Usage:
//
//	resparc-sim [-bench mnist-mlp] [-mca 64] [-steps 48] [-samples 3] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/dataset"
	"resparc/internal/experiments"
	"resparc/internal/report"
	"resparc/internal/snn"
	"resparc/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resparc-sim: ")
	name := flag.String("bench", "mnist-mlp", "benchmark: mnist-mlp|svhn-mlp|cifar-mlp|mnist-cnn|svhn-cnn|cifar-cnn")
	mca := flag.Int("mca", 64, "MCA (crossbar) size")
	steps := flag.Int("steps", 48, "SNN timesteps per classification")
	samples := flag.Int("samples", 3, "dataset samples to average over")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (<= 0: one per CPU); results are identical for any value")
	traceFile := flag.String("trace", "", "write a per-(step,layer) JSONL event trace of one classification to this file")
	flag.Parse()

	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.DefaultConfig()
	cfg.Steps = *steps
	cfg.Samples = *samples
	cfg.Workers = *workers
	p, err := experiments.RunPair(b, *mca, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s, %s) on RESPARC-%d vs CMOS baseline\n\n", b.Name, b.App, b.Connectivity, *mca)
	t := report.NewTable("Per-classification results", "Metric", "RESPARC", "CMOS")
	t.Add("Energy (J)", report.Sci(p.RESPARC.Energy), report.Sci(p.CMOS.Energy))
	t.Add("Latency (s)", report.Sci(p.RESPARC.Latency), report.Sci(p.CMOS.Latency))
	t.Add("Throughput (cls/s)", report.F(p.RESPARC.Throughput()), report.F(p.CMOS.Throughput()))
	t.Render(os.Stdout)
	fmt.Println()

	bd := report.NewTable("RESPARC energy breakdown", "Component", "Energy (J)", "Share")
	total := p.RRep.Energy.Total()
	bd.Add("Neuron", report.Sci(p.RRep.Energy.Neuron), report.Pct(p.RRep.Energy.Neuron/total))
	bd.Add("Crossbar", report.Sci(p.RRep.Energy.Crossbar), report.Pct(p.RRep.Energy.Crossbar/total))
	bd.Add("Peripherals", report.Sci(p.RRep.Energy.Peripherals), report.Pct(p.RRep.Energy.Peripherals/total))
	bd.Render(os.Stdout)
	fmt.Println()

	cd := report.NewTable("CMOS energy breakdown", "Component", "Energy (J)", "Share")
	ct := p.CRep.Energy.Total()
	cd.Add("Core", report.Sci(p.CRep.Energy.Core), report.Pct(p.CRep.Energy.Core/ct))
	cd.Add("Memory Access", report.Sci(p.CRep.Energy.MemoryAccess), report.Pct(p.CRep.Energy.MemoryAccess/ct))
	cd.Add("Memory Leakage", report.Sci(p.CRep.Energy.MemoryLeakage), report.Pct(p.CRep.Energy.MemoryLeakage/ct))
	cd.Render(os.Stdout)
	fmt.Println()

	bkd := p.RRep.Breakdown
	lt := report.NewTable("RESPARC latency breakdown (cycles)", "Phase", "Cycles", "Share")
	totalCyc := float64(bkd.Total())
	lt.Add("Global control sync", fmt.Sprintf("%d", bkd.Sync), report.Pct(float64(bkd.Sync)/totalCyc))
	lt.Add("IO bus broadcast", fmt.Sprintf("%d", bkd.Bus), report.Pct(float64(bkd.Bus)/totalCyc))
	lt.Add("Switch delivery", fmt.Sprintf("%d", bkd.Delivery), report.Pct(float64(bkd.Delivery)/totalCyc))
	lt.Add("Mux integration", fmt.Sprintf("%d", bkd.Integrate), report.Pct(float64(bkd.Integrate)/totalCyc))
	lt.Add("Spike drain", fmt.Sprintf("%d", bkd.Drain), report.Pct(float64(bkd.Drain)/totalCyc))
	lt.Render(os.Stdout)
	fmt.Printf("bottleneck: %s; pipelined throughput %.3g cls/s (interval %d cycles/step)\n\n",
		bkd.Bottleneck(),
		p.RRep.PipelinedThroughput(*steps**samples, cfg.Params.NCCycle())*float64(*samples),
		p.RRep.PipelineInterval(*steps**samples))

	fmt.Printf("Energy gain: %s   Speedup: %s\n",
		report.Gain(p.Compared.EnergyGain), report.Gain(p.Compared.Speedup))
	fmt.Printf("Mapping: %d MCAs, %d mPEs, %d NeuroCells, utilization %s\n",
		p.Mapping.MCAs, p.Mapping.MPEs, p.Mapping.NCs, report.Pct(p.Mapping.TotalUtilization()))

	if *traceFile != "" {
		if err := writeTrace(*traceFile, b, p, cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceFile)
	}
}

// writeTrace re-runs one classification with tracing enabled and writes the
// JSONL event stream.
func writeTrace(path string, b bench.Benchmark, p experiments.Pair, cfg experiments.Config) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	net := p.Mapping.Net
	opt := core.DefaultOptions()
	opt.Params = cfg.Params
	opt.Steps = cfg.Steps
	opt.Trace = w
	chip, err := core.New(net, p.Mapping, opt)
	if err != nil {
		return err
	}
	set := dataset.Generate(b.Dataset, 1, cfg.Seed+100)
	img, err := bench.PrepareInput(set.Samples[0].Input, set.Shape, net.Input)
	if err != nil {
		return err
	}
	_, rep := chip.ClassifyDetailed(bench.NormalizeIntensity(img), snn.NewPoissonEncoder(cfg.MaxProb, cfg.Seed+7))
	if rep.TraceError != nil {
		return rep.TraceError
	}
	return w.Flush()
}
