// Package resparc reproduces "RESPARC: A Reconfigurable and Energy-Efficient
// Architecture with Memristive Crossbars for Deep Spiking Neural Networks"
// (Ankit et al., DAC 2017).
//
// The library lives under internal/: the spiking-network model and its
// training/conversion substrates, the memristive-crossbar and device models,
// the three-tier reconfigurable architecture simulator (mPE, NeuroCell,
// RESPARC core), the mapper, the optimized CMOS baseline, and an experiment
// harness regenerating every figure and table of the paper's evaluation.
// See README.md, DESIGN.md and EXPERIMENTS.md, the runnable programs in
// cmd/ and examples/, and bench_test.go for the per-figure benchmark
// harness.
package resparc
