// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§4-§5). Each benchmark regenerates its artifact at
// reduced fidelity and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The resparc-bench command runs the same
// drivers at full fidelity and prints the tables.
package resparc

import (
	"testing"

	"resparc/internal/experiments"
)

func benchConfig() experiments.Config {
	c := experiments.QuickConfig()
	c.Steps = 16
	return c
}

// BenchmarkFig08Params regenerates the RESPARC parameter/metric tables.
func BenchmarkFig08Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		params, metrics := experiments.Fig8()
		if len(params.Rows) == 0 || len(metrics.Rows) == 0 {
			b.Fatal("empty Fig 8 tables")
		}
	}
}

// BenchmarkFig09Params regenerates the CMOS baseline parameter/metric
// tables.
func BenchmarkFig09Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		params, metrics := experiments.Fig9()
		if len(params.Rows) == 0 || len(metrics.Rows) == 0 {
			b.Fatal("empty Fig 9 tables")
		}
	}
}

// BenchmarkFig10Benchmarks builds all six SNN benchmarks and checks their
// totals against the published table.
func BenchmarkFig10Benchmarks(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.SynErr > worst {
				worst = r.SynErr
			}
			if r.NeuronErr > worst {
				worst = r.NeuronErr
			}
		}
		b.ReportMetric(worst*100, "%worst-deviation")
	}
}

// BenchmarkFig11EnergySpeedup runs the six-benchmark comparison of Fig 11
// and reports the four family averages the paper quotes (paper: MLP 513x
// energy / 382x speedup, CNN 12x / 60x).
func BenchmarkFig11EnergySpeedup(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MLPAvgGain, "MLP-energy-gain-x")
		b.ReportMetric(r.MLPAvgSpeedup, "MLP-speedup-x")
		b.ReportMetric(r.CNNAvgGain, "CNN-energy-gain-x")
		b.ReportMetric(r.CNNAvgSpeedup, "CNN-speedup-x")
	}
}

// BenchmarkFig12Breakdown runs the MCA-size breakdown sweep of Fig 12 and
// reports the CNN size-optimum (paper: 64).
func BenchmarkFig12Breakdown(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		best, bestE := 0, 0.0
		for _, size := range experiments.Fig12Sizes {
			e, ok := r.EnergyOf(r.RESPARCCNN, "mnist-cnn", size)
			if !ok {
				b.Fatal("missing entry")
			}
			if best == 0 || e.Energy.Total() < bestE {
				best, bestE = size, e.Energy.Total()
			}
		}
		b.ReportMetric(float64(best), "CNN-optimal-MCA-size")
	}
}

// BenchmarkFig13EventDriven runs the event-drivenness study of Fig 13 and
// reports the savings ratio on the smallest MCA (where the paper finds the
// largest benefit).
func BenchmarkFig13EventDriven(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, _, mlp32 := experiments.Savings(r.MLP, 32)
		_, _, cnn32 := experiments.Savings(r.CNN, 32)
		b.ReportMetric(mlp32, "MLP-savings-32-x")
		b.ReportMetric(cnn32, "CNN-savings-32-x")
	}
}

// BenchmarkFig14aAccuracy trains and converts one network per dataset and
// reports the 4-bit-vs-8-bit accuracy ratio (paper: ~1, the reason 4-bit
// weights suffice).
func BenchmarkFig14aAccuracy(b *testing.B) {
	cfg := experiments.DefaultFig14a()
	cfg.TrainSamples, cfg.TestSamples, cfg.Epochs, cfg.Steps = 300, 50, 6, 60
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig14a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var worst4 float64 = 2
		for _, r := range rows {
			if r.Norm[4] < worst4 {
				worst4 = r.Norm[4]
			}
		}
		b.ReportMetric(worst4, "worst-4bit/8bit-accuracy")
	}
}

// BenchmarkFig14bEnergy sweeps weight precision on both architectures and
// reports the CMOS 8-bit/1-bit energy growth (paper: ~2x) and the RESPARC
// growth (paper: ~1, precision-independent).
func BenchmarkFig14bEnergy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig14b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].CMOS/rows[0].CMOS, "CMOS-8b/1b-energy")
		b.ReportMetric(rows[len(rows)-1].RESPARC/rows[0].RESPARC, "RESPARC-8b/1b-energy")
	}
}
