package resparc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"resparc/internal/ann"
	"resparc/internal/bench"
	"resparc/internal/cmosbase"
	"resparc/internal/core"
	"resparc/internal/dataset"
	"resparc/internal/mapping"
	"resparc/internal/quant"
	"resparc/internal/snn"
	"resparc/internal/trace"
)

// TestEndToEndPipeline exercises the full downstream-user flow across every
// public package: generate data, train an ANN, convert to an SNN, quantize
// to memristor precision, serialize and reload, map onto the hierarchy,
// simulate on both architectures with tracing, and inspect the floorplan.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end flow; skipped with -short")
	}
	// 1. Data + training.
	train := dataset.Generate(dataset.Digits, 250, 1)
	test := dataset.Generate(dataset.Digits, 50, 2)
	rng := rand.New(rand.NewSource(3))
	mlp := ann.NewMLP(train.Shape.Size(), []int{32}, 10, rng)
	tc := ann.DefaultTrainConfig()
	tc.Epochs = 5
	tc.LR = 0.01
	tc.Momentum = 0.5
	mlp.Train(train, tc)
	annAcc := mlp.Evaluate(test)
	if annAcc < 0.6 {
		t.Fatalf("training failed: %.2f", annAcc)
	}

	// 2. Conversion + quantization.
	calib, _ := train.Split(60)
	net, err := snn.FromANN("e2e", mlp, calib)
	if err != nil {
		t.Fatal(err)
	}
	qnet, err := quant.QuantizeNetwork(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	snnAcc := snn.Evaluate(qnet, test, snn.NewPoissonEncoder(0.9, 4), 80)
	if snnAcc < annAcc-0.2 {
		t.Fatalf("conversion lost too much: ANN %.2f SNN %.2f", annAcc, snnAcc)
	}

	// 3. Serialize, reload, verify identity.
	var buf bytes.Buffer
	if err := snn.WriteNetwork(&buf, qnet); err != nil {
		t.Fatal(err)
	}
	loaded, err := snn.ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Map and inspect.
	m, err := mapping.Map(loaded, mapping.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fp := m.Floorplan(2); !strings.Contains(fp, "NC 0:") {
		t.Fatal("floorplan malformed")
	}
	if e, tm := m.ProgramCost(); e <= 0 || tm <= 0 {
		t.Fatal("program cost malformed")
	}

	// 5. Simulate on RESPARC with a trace, and on the CMOS baseline.
	var traceBuf bytes.Buffer
	opt := core.DefaultOptions()
	opt.Steps = 24
	opt.Trace = trace.NewWriter(&traceBuf)
	chip, err := core.New(loaded, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	img := bench.NormalizeIntensity(test.Samples[0].Input)
	rRes, rRep := chip.ClassifyDetailed(img, snn.NewPoissonEncoder(0.8, 5))
	if rRep.TraceError != nil {
		t.Fatal(rRep.TraceError)
	}
	if err := opt.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Read(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != opt.Steps*len(loaded.Layers) {
		t.Fatalf("%d trace events", len(events))
	}

	bopt := cmosbase.DefaultOptions()
	bopt.Steps = 24
	base, err := cmosbase.New(loaded, bopt)
	if err != nil {
		t.Fatal(err)
	}
	cRes, cRep := base.ClassifyDetailed(img, snn.NewPoissonEncoder(0.8, 5))

	// 6. The cross-architecture invariants.
	if rRep.Predicted != cRep.Predicted {
		t.Fatalf("architectures disagree: %d vs %d", rRep.Predicted, cRep.Predicted)
	}
	if cRes.Energy <= rRes.Energy {
		t.Fatalf("RESPARC must win on energy: %.3g vs %.3g", rRes.Energy, cRes.Energy)
	}
	if cRes.Latency <= rRes.Latency {
		t.Fatalf("RESPARC must win on latency: %.3g vs %.3g", rRes.Latency, cRes.Latency)
	}
}
